//! The simulation event vocabulary and per-job live state.

use scan_cloud::vm::VmId;
use scan_sched::plan::ExecutionPlan;
use scan_sim::{Calendar, SimTime};
use scan_workload::job::{Job, JobId};

/// Where the platform's subsystems schedule follow-up events.
///
/// A solo session passes the engine's own [`Calendar<Event>`] straight
/// through; a fleet run passes an adapter that tags each event with its
/// tenant and multiplexes many platforms onto one shared calendar. The
/// subsystems are generic over this trait and cannot tell the
/// difference, which is what keeps single-tenant event ordering (and the
/// golden traces) bit-identical to the pre-fleet code.
pub(crate) trait EventSink {
    /// Schedules `event` at `at`.
    fn schedule(&mut self, at: SimTime, event: Event);
}

impl EventSink for Calendar<Event> {
    fn schedule(&mut self, at: SimTime, event: Event) {
        // The inherent method, which tags `TenantId::SOLO`.
        Calendar::schedule(self, at, event);
    }
}

/// Simulation events.
///
/// Kept at or under 16 bytes (u32 ids + u32 stage + discriminant) so the
/// calendar's heap entries stay two words of payload — heap sift moves
/// are the simulator's hottest memory traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// The next job batch arrives.
    Arrival,
    /// A VM finished booting or reshaping.
    VmReady(VmId),
    /// One shard subtask of a job's current stage finished.
    SubtaskDone {
        /// Owning job.
        job: JobId,
        /// Stage the subtask belonged to (consistency check).
        stage: u32,
        /// The worker that ran it.
        vm: VmId,
    },
    /// Periodic idle-worker release scan.
    IdleSweep,
    /// Periodic re-planning / model-refresh tick.
    Replan,
}

// Layout audit: growing `Event` past 16 bytes fattens every calendar
// heap entry; fail the build instead of silently regressing.
const _: () = assert!(std::mem::size_of::<Event>() <= 16);

/// A queued shard subtask (the queue key carries stage and shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(super) struct SubtaskRef {
    pub(super) job: JobId,
}

/// Live state of one admitted job.
#[derive(Debug, Clone)]
pub(super) struct JobRun {
    pub(super) job: Job,
    pub(super) plan: ExecutionPlan,
    pub(super) stage: usize,
    /// Shard subtasks of the current stage still queued or running.
    pub(super) outstanding: u32,
}
