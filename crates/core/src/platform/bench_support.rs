//! Bench-only harness over the platform's dispatch and hiring hot paths.
//!
//! The criterion benches in `crates/bench` need to time `take_idle` /
//! `assign` (the dispatch inner loop) and the aggregate-priced scaling
//! decision (the hiring path) *in isolation*, on a platform
//! frozen mid-run — but those methods and the fields they touch are
//! platform-internal by design. This module is the narrow, `doc(hidden)`
//! window the benches go through: it builds a mid-run state (idle pool,
//! busy set, queued jobs) and exposes one iterable operation per hot
//! path, each of which restores the state it perturbs so criterion can
//! call it millions of times.
//!
//! Not a public API: shapes and semantics here follow the benches, not
//! the platform's contracts.

use super::events::{JobRun, SubtaskRef};
use super::Platform;
use crate::config::{ScanConfig, VariableParams};
use scan_cloud::instance::InstanceSize;
use scan_cloud::vm::boot_penalty;
use scan_sched::plan::ExecutionPlan;
use scan_sched::queue::TaskClass;
use scan_sched::scaling::{ScalingContext, ScalingPolicy};
use scan_sim::{Calendar, SimDuration, SimTime};
use scan_workload::job::{Job, JobId};

/// Worker shape every harness task uses (a valid instance size).
const CORES: u32 = 4;

/// A platform frozen in a mid-run state, exposing one repeatable
/// operation per benched hot path.
pub struct PlatformHarness {
    platform: Platform,
    cal: Calendar<super::Event>,
    now: SimTime,
    class: TaskClass,
}

impl PlatformHarness {
    /// Builds a platform with `idle_workers` booted 4-core workers in the
    /// idle pool, `busy_workers` running tasks (populating the projected-
    /// wait scan), and `queued_jobs` distinct single-subtask jobs waiting
    /// in one task class.
    pub fn new(idle_workers: usize, busy_workers: usize, queued_jobs: usize) -> Self {
        let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.5), 42);
        cfg.fixed.sim_time_tu = 1.0;
        // Room for the harness workers on the private tier regardless of
        // the configured counts.
        cfg.fixed.private_capacity_cores =
            (CORES as usize * (idle_workers + busy_workers + 8)) as u32;
        let mut p = Platform::new(cfg, 0);
        let now = SimTime::new(1.0);
        let class = TaskClass { stage: 0, cores: CORES };
        let size = InstanceSize::new(CORES).expect("harness shape is an instance size");

        for _ in 0..idle_workers {
            let (vm, ready_at) = p
                .provider
                .hire_on(p.private_tier, size, SimTime::ZERO)
                .expect("private capacity sized above");
            p.provider.vm_mut(vm).expect("just hired").finish_boot(ready_at);
            p.idle.insert(CORES, vm);
        }
        for i in 0..busy_workers {
            let (vm, ready_at) =
                p.provider.hire_on(p.private_tier, size, SimTime::ZERO).expect("capacity");
            let worker = p.provider.vm_mut(vm).expect("just hired");
            worker.finish_boot(ready_at);
            worker.start_task(ready_at);
            // Staggered finish times so the projected-wait scan does real
            // comparisons instead of hitting one constant.
            p.busy.insert(vm, now + SimDuration::new(1.0 + 0.01 * i as f64), CORES);
        }
        let n_stages = p.broker.learned_model().n_stages();
        for i in 0..queued_jobs {
            // Dense ids from zero, matching arrival numbering — the job
            // arena is sized by the highest id.
            let id = JobId(i as u32);
            let job = Job::new(id, 5.0, SimTime::ZERO);
            let (d, submitted) = (job.size_units, job.submitted_at);
            // One 4-core shard per stage — shaped like `class` at stage 0.
            let plan = ExecutionPlan::new(vec![(1, CORES); n_stages]);
            p.jobs.insert(id.slot(), JobRun { job, plan, stage: 0, outstanding: 1 });
            p.queues.push(class, SubtaskRef { job: id }, SimTime::ZERO);
            p.queue_agg.on_enqueue(class, id.0, d, submitted, 1);
        }

        PlatformHarness { platform: p, cal: Calendar::new(), now, class }
    }

    /// One `take_idle` + put-back cycle: the dispatch fast path's pool
    /// lookup pair. Returns the VM number so callers can black-box it.
    pub fn take_idle_cycle(&mut self) -> u64 {
        let vm = self.platform.take_idle(CORES).expect("harness keeps idle workers");
        self.platform.idle.insert(CORES, vm);
        vm.0 as u64
    }

    /// One full `assign`: pops the queue head onto an idle worker and
    /// schedules its completion, then restores the state (worker back to
    /// idle, subtask re-queued, calendar drained) so the next iteration
    /// sees the same picture. Returns the assigned VM number.
    pub fn assign_cycle(&mut self) -> u64 {
        let head = self
            .platform
            .queues
            .get(self.class)
            .and_then(|q| q.iter().next())
            .map(|e| e.item.job)
            .expect("harness keeps queued jobs");
        let vm = self.platform.take_idle(CORES).expect("idle worker");
        self.platform.assign(self.class, vm, self.now, &mut self.cal);
        // Undo: the assign popped `head` (queue and aggregate mirror),
        // scheduled one SubtaskDone and marked the worker busy. All
        // harness jobs are identical, so re-queueing the popped subtask
        // at the tail restores an equivalent state.
        self.cal.clear();
        self.platform.busy.remove(vm);
        let worker = self.platform.provider.vm_mut(vm).expect("assigned VM");
        worker.finish_task(self.now);
        self.platform.idle.insert(CORES, vm);
        let run = self.platform.jobs.get(head.slot()).expect("queued job is live");
        let (d, submitted) = (run.job.size_units, run.job.submitted_at);
        self.platform.queues.push(self.class, SubtaskRef { job: head }, self.now);
        self.platform.queue_agg.on_enqueue(self.class, head.0, d, submitted, 1);
        vm.0 as u64
    }

    /// One hiring-path pricing pass: revalidates the Eq. 1 window if the
    /// reward needs ETTs, gathers the scalar inputs, builds the aggregate
    /// pricer over the stalled class and runs the priced decision —
    /// exactly what `try_grow` pays per decision in a release build.
    /// Returns the number of jobs in the priced window (black-box fodder).
    pub fn price_decision(&mut self) -> usize {
        let p = &mut self.platform;
        if p.reward.depends_on_ett() {
            let Platform { queue_agg, estimator, jobs, .. } = p;
            let revision = estimator.revision();
            queue_agg.revalidate_window(self.class, 0, Platform::MAX_QUEUE_VIEW, revision, |job| {
                let run = jobs.get(job as usize).expect("queued job is live");
                estimator.remaining(&run.job, run.stage, &run.plan.stages)
            });
        }
        let inputs = p.scaling_inputs(self.class, self.now);
        let eq1 = p.queue_agg.pricer(self.class, 0, Platform::MAX_QUEUE_VIEW, self.now);
        let window = eq1.window_len();
        let ctx = ScalingContext {
            private_has_capacity: inputs.private_has_capacity,
            eq1,
            queue_depth: p.queue_agg.entries(self.class) as u32,
            expected_wait_tu: inputs.expected_wait_tu,
            public_price_per_core_tu: p.cfg.variable.public_core_cost,
            stage: self.class.stage as u32,
            cores_needed: self.class.cores,
            boot_penalty_tu: boot_penalty().as_tu(),
            expected_task_tu: inputs.expected_task_tu,
            reward: p.reward,
        };
        let (_decision, _costs) = p.cfg.variable.scaling.decide_priced(&ctx);
        window
    }

    /// One aggregate-maintenance round trip: pops the class head (queue
    /// and aggregate mirror together) and re-enqueues it at the tail —
    /// the exact bookkeeping every real dequeue/enqueue pair pays to keep
    /// Eq. 1 incremental. Returns the queue length (black-box fodder).
    pub fn queue_maintenance_cycle(&mut self) -> usize {
        let p = &mut self.platform;
        let (subtask, _wait) =
            p.queues.pop(self.class, self.now).expect("harness keeps queued jobs");
        p.queue_agg.on_pop(self.class);
        let run = p.jobs.get(subtask.job.slot()).expect("queued job is live");
        let (d, submitted) = (run.job.size_units, run.job.submitted_at);
        p.queues.push(self.class, subtask, self.now);
        p.queue_agg.on_enqueue(self.class, subtask.job.0, d, submitted, 1);
        p.queues.get(self.class).map(|q| q.len()).unwrap_or(0)
    }
}
