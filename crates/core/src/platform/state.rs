//! Dense hot-path state containers for the platform (DESIGN §"Hot-path
//! data structures & determinism invariants").
//!
//! The dispatch/scaling inner loop runs once per event over these four
//! structures; profiling showed the old map-based representations
//! (`BTreeMap`/`HashMap` keyed by ids) spending most of the loop in
//! pointer-chasing descents. Ids in this codebase are *dense monotone
//! u32s* (jobs number from 0 in arrival order, VMs in hire order, and
//! neither is ever reused within a session), so every map below is a
//! `Vec` indexed by id slot, and every per-shape map is a fixed
//! five-slot array over [`SHAPE_CORES`].
//!
//! Determinism invariants preserved from the map era:
//! - **Idle-worker selection is lowest-id-first** ([`IdlePools::take_min`]
//!   pops the minimum id, exactly like `BTreeSet::iter().next()` did).
//! - **Shape iteration is ascending cores** (slot order = `[1,2,4,8,16]`).
//! - **Busy-set scans are order-insensitive** (min over f64 finish times
//!   commutes), so [`BusyTable`]'s swap-remove reordering is invisible.

use scan_cloud::vm::VmId;
use scan_sched::queue::{shape_slot, N_SHAPES, SHAPE_CORES};
use scan_sim::SimTime;
use scan_workload::job::Job;
use std::collections::VecDeque;

/// Per-shape pools of idle workers with O(1) deterministic min-id pop.
///
/// Each pool is kept sorted *descending* so `take_min` is a plain
/// `Vec::pop`. Inserts binary-search their position; pools hold tens of
/// VMs, so the occasional memmove is far cheaper than the tree nodes it
/// replaces.
#[derive(Debug, Default)]
pub(super) struct IdlePools {
    pools: [Vec<VmId>; N_SHAPES],
}

impl IdlePools {
    pub(super) fn new() -> Self {
        Self::default()
    }

    /// Adds an idle worker to its shape pool.
    pub(super) fn insert(&mut self, cores: u32, vm: VmId) {
        let pool = &mut self.pools[shape_slot(cores)];
        let pos = pool.partition_point(|&v| v > vm);
        debug_assert!(pool.get(pos) != Some(&vm), "double insert of idle VM");
        pool.insert(pos, vm);
    }

    /// Removes a specific worker (e.g. picked for reshape or release).
    /// Returns whether it was present.
    pub(super) fn remove(&mut self, cores: u32, vm: VmId) -> bool {
        let pool = &mut self.pools[shape_slot(cores)];
        let pos = pool.partition_point(|&v| v > vm);
        if pool.get(pos) == Some(&vm) {
            pool.remove(pos);
            true
        } else {
            false
        }
    }

    /// Pops the lowest-id idle worker of a shape — the deterministic
    /// "lowest id first" selection rule.
    pub(super) fn take_min(&mut self, cores: u32) -> Option<VmId> {
        self.pools[shape_slot(cores)].pop()
    }

    /// Idle workers of one shape slot.
    pub(super) fn len_of_slot(&self, slot: usize) -> usize {
        self.pools[slot].len()
    }

    /// Ascending-id iteration over one shape slot's pool.
    pub(super) fn iter_slot_asc(&self, slot: usize) -> impl Iterator<Item = VmId> + '_ {
        self.pools[slot].iter().rev().copied()
    }
}

/// The busy set: which VMs are running tasks, until when, and at what
/// shape — a slot map over VM ids with an unordered dense entry list.
///
/// The scaling decision's projected-wait scan reads `(until, cores)` for
/// every busy VM; caching cores here (a VM cannot reshape while busy)
/// removes the per-entry provider lookup that used to dominate the scan.
#[derive(Debug, Default)]
pub(super) struct BusyTable {
    /// `(vm, until, cores)`, unordered; removal is swap-remove.
    entries: Vec<(VmId, SimTime, u32)>,
    /// VM slot → index into `entries`; `u32::MAX` = not busy.
    pos: Vec<u32>,
}

const NOT_BUSY: u32 = u32::MAX;

impl BusyTable {
    pub(super) fn new() -> Self {
        Self::default()
    }

    /// Marks a VM busy until `until`.
    pub(super) fn insert(&mut self, vm: VmId, until: SimTime, cores: u32) {
        if self.pos.len() <= vm.slot() {
            self.pos.resize(vm.slot() + 1, NOT_BUSY);
        }
        debug_assert_eq!(self.pos[vm.slot()], NOT_BUSY, "VM already busy");
        self.pos[vm.slot()] = self.entries.len() as u32;
        self.entries.push((vm, until, cores));
    }

    /// Clears a VM's busy mark. Returns whether it was busy.
    pub(super) fn remove(&mut self, vm: VmId) -> bool {
        let Some(&idx) = self.pos.get(vm.slot()) else {
            return false;
        };
        if idx == NOT_BUSY {
            return false;
        }
        self.pos[vm.slot()] = NOT_BUSY;
        self.entries.swap_remove(idx as usize);
        if let Some(&(moved, _, _)) = self.entries.get(idx as usize) {
            self.pos[moved.slot()] = idx;
        }
        true
    }

    /// Soonest finish time among busy VMs of the given shape, as a span
    /// from `now`. Order-insensitive (f64 min), so the unordered entry
    /// list cannot perturb determinism.
    pub(super) fn min_wait_for_cores(&self, cores: u32, now: SimTime) -> Option<f64> {
        let mut best = f64::INFINITY;
        for &(_, until, c) in &self.entries {
            if c == cores {
                best = best.min((until - now).as_tu());
            }
        }
        best.is_finite().then_some(best)
    }

    /// Total cores across all busy VMs (the utilisation numerator).
    pub(super) fn total_cores(&self) -> u32 {
        self.entries.iter().map(|&(_, _, c)| c).sum()
    }
}

/// Per-class counters stored densely (stage rows × shape slots), used
/// for both the in-flight-hire (`pending`) accounting.
#[derive(Debug, Default)]
pub(super) struct ClassCounts {
    rows: Vec<[u32; N_SHAPES]>,
}

impl ClassCounts {
    pub(super) fn new() -> Self {
        Self::default()
    }

    pub(super) fn get(&self, stage: usize, cores: u32) -> u32 {
        self.rows.get(stage).map(|r| r[shape_slot(cores)]).unwrap_or(0)
    }

    pub(super) fn increment(&mut self, stage: usize, cores: u32) {
        while self.rows.len() <= stage {
            self.rows.push([0; N_SHAPES]);
        }
        self.rows[stage][shape_slot(cores)] += 1;
    }

    pub(super) fn decrement_saturating(&mut self, stage: usize, cores: u32) {
        if let Some(row) = self.rows.get_mut(stage) {
            let c = &mut row[shape_slot(cores)];
            *c = c.saturating_sub(1);
        }
    }
}

/// Per-shape count of VMs currently booting, maintained on hire /
/// reshape / `VmReady` so the scaling decision's "is anything of this
/// shape about to arrive?" probe is O(1) instead of a scan over every
/// live VM the provider knows about.
#[derive(Debug, Default)]
pub(super) struct BootingCounts {
    counts: [u32; N_SHAPES],
}

impl BootingCounts {
    pub(super) fn new() -> Self {
        Self::default()
    }

    /// A VM of `cores` started booting (fresh hire or reshape).
    pub(super) fn inc(&mut self, cores: u32) {
        self.counts[shape_slot(cores)] += 1;
    }

    /// A VM of `cores` finished booting (its `VmReady` fired).
    pub(super) fn dec(&mut self, cores: u32) {
        let c = &mut self.counts[shape_slot(cores)];
        debug_assert!(*c > 0, "boot completion without a tracked boot");
        *c = c.saturating_sub(1);
    }

    /// VMs of `cores` currently booting.
    pub(super) fn get(&self, cores: u32) -> u32 {
        self.counts[shape_slot(cores)]
    }
}

/// A dense append-mostly arena keyed by monotone u32 id slots (job
/// runs, per-VM reservations). `None` = never inserted or removed; ids
/// are never reused, so a freed slot stays `None` for the session.
#[derive(Debug)]
pub(super) struct SlotArena<T> {
    slots: Vec<Option<T>>,
}

impl<T> Default for SlotArena<T> {
    fn default() -> Self {
        SlotArena { slots: Vec::new() }
    }
}

impl<T> SlotArena<T> {
    pub(super) fn new() -> Self {
        Self::default()
    }

    /// Inserts at `slot`, growing the arena as needed. Panics on
    /// occupied slots — ids are unique by construction.
    pub(super) fn insert(&mut self, slot: usize, value: T) {
        if self.slots.len() <= slot {
            self.slots.resize_with(slot + 1, || None);
        }
        debug_assert!(self.slots[slot].is_none(), "slot arena id reused");
        self.slots[slot] = Some(value);
    }

    #[inline]
    pub(super) fn get(&self, slot: usize) -> Option<&T> {
        self.slots.get(slot)?.as_ref()
    }

    #[inline]
    pub(super) fn get_mut(&mut self, slot: usize) -> Option<&mut T> {
        self.slots.get_mut(slot)?.as_mut()
    }

    pub(super) fn remove(&mut self, slot: usize) -> Option<T> {
        self.slots.get_mut(slot)?.take()
    }

    /// Highest slot ever allocated plus one (the id-space bound, for
    /// sizing parallel stamp arrays).
    pub(super) fn slot_bound(&self) -> usize {
        self.slots.len()
    }
}

/// FIFO backlog of jobs the fair-share admission gate has deferred.
///
/// Only fleet tenants ever fill this: a solo session's gate is always
/// open, so the deque stays empty and costs one `is_empty` branch per
/// arrival. Deferred jobs keep their original submission timestamps, so
/// a long deferral shows up as latency (and lost reward), not as a
/// silently re-dated job.
#[derive(Debug, Default)]
pub(super) struct AdmissionBacklog {
    jobs: VecDeque<Job>,
}

impl AdmissionBacklog {
    pub(super) fn push(&mut self, job: Job) {
        self.jobs.push_back(job);
    }

    /// Pops the oldest deferred job.
    pub(super) fn pop(&mut self) -> Option<Job> {
        self.jobs.pop_front()
    }

    pub(super) fn len(&self) -> usize {
        self.jobs.len()
    }

    pub(super) fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Standing worker-pool targets per shape (VM counts), dense by slot.
#[derive(Debug, Default, Clone, Copy)]
pub(super) struct StandingTargets {
    by_slot: [u32; N_SHAPES],
}

impl StandingTargets {
    pub(super) fn clear(&mut self) {
        self.by_slot = [0; N_SHAPES];
    }

    pub(super) fn set(&mut self, cores: u32, n: u32) {
        self.by_slot[shape_slot(cores)] = n;
    }

    pub(super) fn floor_for(&self, cores: u32) -> u32 {
        self.by_slot[shape_slot(cores)]
    }

    /// `(cores, target)` pairs in ascending-cores order (the deterministic
    /// iteration order the old `BTreeMap<u32, u32>` gave).
    pub(super) fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        SHAPE_CORES.iter().zip(self.by_slot.iter()).map(|(&c, &n)| (c, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_pool_pops_lowest_id_first() {
        let mut pools = IdlePools::new();
        for id in [7u32, 2, 9, 4] {
            pools.insert(4, VmId(id));
        }
        assert_eq!(pools.take_min(4), Some(VmId(2)));
        assert_eq!(pools.take_min(4), Some(VmId(4)));
        pools.insert(4, VmId(1));
        assert_eq!(pools.take_min(4), Some(VmId(1)));
        assert_eq!(pools.take_min(4), Some(VmId(7)));
        assert_eq!(pools.take_min(4), Some(VmId(9)));
        assert_eq!(pools.take_min(4), None);
    }

    #[test]
    fn idle_pool_remove_specific() {
        let mut pools = IdlePools::new();
        pools.insert(8, VmId(3));
        pools.insert(8, VmId(5));
        assert!(pools.remove(8, VmId(3)));
        assert!(!pools.remove(8, VmId(3)));
        assert_eq!(pools.take_min(8), Some(VmId(5)));
    }

    #[test]
    fn idle_pool_slot_iteration_ascends() {
        let mut pools = IdlePools::new();
        for id in [6u32, 1, 4] {
            pools.insert(16, VmId(id));
        }
        let ids: Vec<u32> = pools.iter_slot_asc(4).map(|v| v.0).collect();
        assert_eq!(ids, vec![1, 4, 6]);
        assert_eq!(pools.len_of_slot(4), 3);
    }

    #[test]
    fn busy_table_tracks_min_wait_per_shape() {
        let mut busy = BusyTable::new();
        let now = SimTime::new(10.0);
        busy.insert(VmId(0), SimTime::new(15.0), 4);
        busy.insert(VmId(1), SimTime::new(12.0), 4);
        busy.insert(VmId(2), SimTime::new(11.0), 8);
        assert_eq!(busy.min_wait_for_cores(4, now), Some(2.0));
        assert_eq!(busy.min_wait_for_cores(8, now), Some(1.0));
        assert_eq!(busy.min_wait_for_cores(16, now), None);
        assert!(busy.remove(VmId(1)));
        assert_eq!(busy.min_wait_for_cores(4, now), Some(5.0));
        assert!(!busy.remove(VmId(1)));
    }

    #[test]
    fn busy_table_swap_remove_keeps_positions() {
        let mut busy = BusyTable::new();
        for i in 0..5u32 {
            busy.insert(VmId(i), SimTime::new(20.0 + i as f64), 2);
        }
        assert!(busy.remove(VmId(0))); // swap-remove moves VmId(4) into slot 0
        assert!(busy.remove(VmId(4)));
        assert!(busy.remove(VmId(2)));
        let now = SimTime::ZERO;
        assert_eq!(busy.min_wait_for_cores(2, now), Some(21.0)); // VmId(1)
    }

    #[test]
    fn booting_counts_round_trip() {
        let mut booting = BootingCounts::new();
        assert_eq!(booting.get(4), 0);
        booting.inc(4);
        booting.inc(4);
        booting.inc(16);
        assert_eq!(booting.get(4), 2);
        assert_eq!(booting.get(16), 1);
        assert_eq!(booting.get(1), 0);
        booting.dec(4);
        assert_eq!(booting.get(4), 1);
    }

    #[test]
    fn class_counts_round_trip() {
        let mut counts = ClassCounts::new();
        assert_eq!(counts.get(3, 8), 0);
        counts.increment(3, 8);
        counts.increment(3, 8);
        assert_eq!(counts.get(3, 8), 2);
        counts.decrement_saturating(3, 8);
        assert_eq!(counts.get(3, 8), 1);
        counts.decrement_saturating(0, 1); // never incremented: no-op
        assert_eq!(counts.get(0, 1), 0);
    }

    #[test]
    fn slot_arena_never_resurrects_removed_slots() {
        let mut arena: SlotArena<&str> = SlotArena::new();
        arena.insert(0, "a");
        arena.insert(3, "b");
        assert_eq!(arena.slot_bound(), 4);
        assert_eq!(arena.get(1), None);
        assert_eq!(arena.remove(3), Some("b"));
        assert_eq!(arena.remove(3), None);
        assert_eq!(arena.get(3), None);
        assert_eq!(arena.get(0), Some(&"a"));
    }

    #[test]
    fn admission_backlog_is_fifo() {
        use scan_workload::job::JobId;
        let mut b = AdmissionBacklog::default();
        assert!(b.is_empty());
        b.push(Job::new(JobId(0), 1.0, SimTime::ZERO));
        b.push(Job::new(JobId(1), 2.0, SimTime::ZERO));
        assert_eq!(b.len(), 2);
        assert_eq!(b.pop().expect("two queued").id, JobId(0));
        assert_eq!(b.pop().expect("one queued").id, JobId(1));
        assert!(b.pop().is_none());
    }

    #[test]
    fn standing_targets_iterate_ascending_cores() {
        let mut t = StandingTargets::default();
        t.set(16, 3);
        t.set(1, 2);
        let pairs: Vec<(u32, u32)> = t.iter().filter(|&(_, n)| n > 0).collect();
        assert_eq!(pairs, vec![(1, 2), (16, 3)]);
        assert_eq!(t.floor_for(16), 3);
        t.clear();
        assert_eq!(t.floor_for(16), 0);
    }
}
