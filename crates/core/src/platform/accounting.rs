//! The reward/cost ledger: job completion, end-of-run settlement, and the
//! trace-consuming [`MetricsAggregator`] that turns the session's event
//! stream into [`SessionMetrics`].

use super::events::JobRun;
use super::Platform;
use crate::metrics::SessionMetrics;
use scan_sim::stats::{Histogram, OnlineStats, TimeWeighted};
use scan_sim::{Observer, SimTime, TraceEvent};

impl Platform {
    pub(super) fn complete(&mut self, run: JobRun, now: SimTime) {
        let latency = run.job.latency(now);
        let reward = self.reward.reward(run.job.size_units, latency);
        self.total_reward += reward;
        self.completed += 1;
        self.tracer.emit(
            now,
            TraceEvent::JobCompleted {
                job: run.job.id.0 as u64,
                latency_tu: latency,
                reward,
                core_stages: run.plan.total_core_stages() as f64,
            },
        );
        if let Some(target) = self.cfg.slo_target_tu {
            if latency > target {
                self.tracer.emit(
                    now,
                    TraceEvent::SloViolation {
                        job: run.job.id.0 as u64,
                        latency_tu: latency,
                        target_tu: target,
                    },
                );
                if let Some(mm) = &self.meters {
                    mm.metrics.counter_add(mm.slo_violations, 1);
                    mm.metrics.rate_add(mm.slo_burn, now.as_tu(), 1.0);
                }
            }
        }
    }

    /// Settles billing, closes the trace stream, and reads the session's
    /// metrics out of the aggregator.
    pub(crate) fn finish(self, ended_at: SimTime, events: u64) -> SessionMetrics {
        for tier in [self.private_tier, self.public_tier] {
            self.tracer.emit(
                ended_at,
                TraceEvent::TierSettled {
                    tier: tier.0 as u32,
                    cost: self.provider.cost_on_tier(tier, ended_at),
                    core_tu: self.provider.core_tu_on_tier(tier, ended_at),
                },
            );
        }
        self.tracer.emit(ended_at, TraceEvent::RunEnded { events_dispatched: events });
        // Close the windowed metric series at the horizon so partial
        // trailing windows are flushed before the registry is read.
        self.metrics.finish_windows(ended_at.as_tu());
        let metrics = self.aggregator.borrow().finalize();
        metrics
    }
}

/// Builds [`SessionMetrics`] from the trace stream alone: the platform
/// emits, this observer counts. Every session owns one (attached before
/// any other observer), and [`MetricsAggregator::finalize`] is read after
/// [`TraceEvent::RunEnded`] arrives.
#[derive(Debug)]
pub struct MetricsAggregator {
    submitted: u64,
    deferred: u64,
    completed: u64,
    slo_violated: u64,
    total_reward: f64,
    latency_stats: OnlineStats,
    latency_hist: Histogram,
    core_stage_stats: OnlineStats,
    queue_len_tw: TimeWeighted,
    busy_core_tu: f64,
    vms_hired: u64,
    reshapes: u64,
    total_cost: f64,
    total_core_tu: f64,
    public_core_tu: f64,
    ended_at: SimTime,
    events: u64,
}

impl Default for MetricsAggregator {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsAggregator {
    /// An empty aggregator, ready to observe one session.
    pub fn new() -> Self {
        MetricsAggregator {
            submitted: 0,
            deferred: 0,
            completed: 0,
            slo_violated: 0,
            total_reward: 0.0,
            latency_stats: OnlineStats::new(),
            latency_hist: Histogram::new(0.0, 400.0, 800),
            core_stage_stats: OnlineStats::new(),
            queue_len_tw: TimeWeighted::new(0.0),
            busy_core_tu: 0.0,
            vms_hired: 0,
            reshapes: 0,
            total_cost: 0.0,
            total_core_tu: 0.0,
            public_core_tu: 0.0,
            ended_at: SimTime::ZERO,
            events: 0,
        }
    }

    /// The assembled session metrics. Valid once the run has ended (the
    /// settlement and run-end events carry the final cost figures).
    pub fn finalize(&self) -> SessionMetrics {
        let profit_per_run = if self.completed == 0 {
            0.0
        } else {
            (self.total_reward - self.total_cost) / self.completed as f64
        };
        SessionMetrics {
            jobs_submitted: self.submitted,
            jobs_deferred: self.deferred,
            jobs_completed: self.completed,
            jobs_slo_violated: self.slo_violated,
            total_reward: self.total_reward,
            total_cost: self.total_cost,
            profit_per_run,
            reward_to_cost: if self.total_cost > 0.0 {
                self.total_reward / self.total_cost
            } else {
                0.0
            },
            mean_latency: self.latency_stats.mean(),
            p95_latency: self.latency_hist.quantile(0.95),
            public_core_tu_share: if self.total_core_tu > 0.0 {
                self.public_core_tu / self.total_core_tu
            } else {
                0.0
            },
            worker_utilisation: if self.total_core_tu > 0.0 {
                (self.busy_core_tu / self.total_core_tu).min(1.0)
            } else {
                0.0
            },
            mean_queue_len: self.queue_len_tw.average_until(self.ended_at),
            peak_queue_len: self.queue_len_tw.peak() as usize,
            mean_core_stages: self.core_stage_stats.mean(),
            vms_hired: self.vms_hired,
            reshapes: self.reshapes,
            events: self.events,
        }
    }
}

impl Observer for MetricsAggregator {
    fn on_event(&mut self, at: SimTime, event: &TraceEvent) {
        match *event {
            TraceEvent::JobArrived { .. } => self.submitted += 1,
            TraceEvent::AdmissionDeferred { jobs, .. } => self.deferred += jobs as u64,
            TraceEvent::JobCompleted { latency_tu, reward, core_stages, .. } => {
                self.completed += 1;
                self.total_reward += reward;
                self.latency_stats.push(latency_tu);
                self.latency_hist.record(latency_tu);
                self.core_stage_stats.push(core_stages);
            }
            TraceEvent::SloViolation { .. } => self.slo_violated += 1,
            TraceEvent::SubtaskDispatched { cores, busy_tu, .. } => {
                self.busy_core_tu += cores as f64 * busy_tu;
            }
            TraceEvent::VmHired { .. } => self.vms_hired += 1,
            TraceEvent::VmReshaped { .. } => self.reshapes += 1,
            TraceEvent::QueueDepthSampled { depth } => {
                self.queue_len_tw.set(at, depth as f64);
            }
            TraceEvent::TierSettled { tier, cost, core_tu } => {
                self.total_cost += cost;
                self.total_core_tu += core_tu;
                if tier != 0 {
                    self.public_core_tu += core_tu;
                }
            }
            TraceEvent::RunEnded { events_dispatched } => {
                self.ended_at = at;
                self.events = events_dispatched;
            }
            _ => {}
        }
    }
}
