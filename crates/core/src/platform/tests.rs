//! Platform-level tests: session behaviour across policies, determinism,
//! the trace/observer layer, and calendar FIFO stability for platform
//! events.

use super::*;
use crate::config::{RewardKind, VariableParams};
use scan_cloud::vm::VmId;
use scan_sched::scaling::ScalingPolicy;
use scan_sim::{JsonlWriter, NullObserver, Observer, RingBuffer, TraceEvent};
use scan_workload::job::JobId;

fn short_config(scaling: ScalingPolicy, interval: f64) -> ScanConfig {
    let mut cfg = ScanConfig::new(VariableParams::fig4(scaling, interval), 99);
    cfg.fixed.sim_time_tu = 300.0;
    cfg
}

fn run(cfg: ScanConfig) -> SessionMetrics {
    Platform::new(cfg, 0).run()
}

#[test]
fn session_completes_jobs() {
    let m = run(short_config(ScalingPolicy::Predictive, 2.5));
    assert!(m.jobs_submitted > 200, "submitted {}", m.jobs_submitted);
    assert!(m.jobs_completed > 0, "completed {}", m.jobs_completed);
    assert!(m.completion_rate() > 0.5, "completion {}", m.completion_rate());
    assert!(m.total_cost > 0.0);
    assert!(m.mean_latency > 0.0);
    assert!(m.events > 1000);
}

#[test]
fn sessions_are_deterministic() {
    let a = run(short_config(ScalingPolicy::Predictive, 2.5));
    let b = run(short_config(ScalingPolicy::Predictive, 2.5));
    assert_eq!(a, b, "same seed must give bit-identical metrics");
}

#[test]
fn repetitions_differ() {
    let cfg = short_config(ScalingPolicy::Predictive, 2.5);
    let a = Platform::new(cfg.clone(), 0).run();
    let b = Platform::new(cfg, 1).run();
    assert_ne!(a, b);
}

#[test]
fn never_scale_uses_no_public_cores() {
    let m = run(short_config(ScalingPolicy::NeverScale, 2.0));
    assert_eq!(m.public_core_tu_share, 0.0);
}

#[test]
fn always_scale_buys_public_under_load() {
    let mut cfg = short_config(ScalingPolicy::AlwaysScale, 2.0);
    // Shrink the private tier so bursts spill over.
    cfg.fixed.private_capacity_cores = 64;
    let m = run(cfg);
    assert!(m.public_core_tu_share > 0.0, "share {}", m.public_core_tu_share);
}

#[test]
fn latency_grows_when_capacity_is_starved() {
    let mut quiet = short_config(ScalingPolicy::NeverScale, 3.0);
    quiet.fixed.private_capacity_cores = 624;
    let mut starved = short_config(ScalingPolicy::NeverScale, 2.0);
    starved.fixed.private_capacity_cores = 160;
    let mq = run(quiet);
    let ms = run(starved);
    assert!(
        ms.completion_rate() < mq.completion_rate(),
        "starved completion {} vs quiet {}",
        ms.completion_rate(),
        mq.completion_rate()
    );
    assert!(
        ms.jobs_completed == 0 || ms.mean_latency > mq.mean_latency,
        "starved latency {} vs quiet {}",
        ms.mean_latency,
        mq.mean_latency
    );
}

#[test]
fn forced_plan_is_respected() {
    let mut cfg = short_config(ScalingPolicy::AlwaysScale, 2.5);
    let plan = vec![(1u32, 2u32), (4, 1), (1, 2), (2, 2), (1, 4), (1, 1), (1, 1)];
    cfg.forced_plan = Some(plan.clone());
    let m = run(cfg);
    let expect: u32 = plan.iter().map(|&(s, t)| s * t).sum();
    assert!((m.mean_core_stages - expect as f64).abs() < 1e-9);
}

#[test]
fn reshape_config_reshapes() {
    let mut cfg = short_config(ScalingPolicy::NeverScale, 2.3);
    cfg.allow_reshape = true;
    // Greedy allocation varies plans, creating shape mismatches that
    // reshaping serves by converting surplus idle workers.
    cfg.variable.allocation = AllocationPolicy::Greedy;
    let m = run(cfg);
    assert!(m.reshapes > 0, "expected reshapes, got {}", m.reshapes);
}

#[test]
fn throughput_reward_sessions_work() {
    let mut cfg = short_config(ScalingPolicy::Predictive, 2.5);
    cfg.variable.reward = RewardKind::ThroughputBased;
    let m = run(cfg);
    assert!(m.total_reward > 0.0);
    assert!(m.reward_to_cost > 0.0);
}

#[test]
fn deadline_and_plateau_reward_sessions_work() {
    // Beyond the smoke assertion, these sessions drive the debug-build
    // Eq. 1 oracle through the two remaining ETT-dependent reward
    // schemes, checking the incremental aggregates bit-for-bit against
    // the full-walk pricing on every scaling decision.
    for reward in [RewardKind::Deadline, RewardKind::Plateau] {
        let mut cfg = short_config(ScalingPolicy::Predictive, 2.5);
        cfg.variable.reward = reward;
        let m = run(cfg);
        assert!(m.jobs_completed > 0, "{reward:?} completed nothing");
    }
}

#[test]
fn adaptive_policy_runs_and_ingests() {
    let mut cfg = short_config(ScalingPolicy::Predictive, 2.5);
    cfg.variable.allocation = AllocationPolicy::LongTermAdaptive;
    let m = run(cfg);
    assert!(m.jobs_completed > 0);
}

#[test]
fn all_allocation_policies_run() {
    for alloc in AllocationPolicy::all() {
        let mut cfg = short_config(ScalingPolicy::Predictive, 2.6);
        cfg.variable.allocation = alloc;
        let m = run(cfg);
        assert!(m.jobs_completed > 0, "{:?} completed nothing", alloc);
    }
}

#[test]
fn utilisation_and_shares_are_fractions() {
    let m = run(short_config(ScalingPolicy::AlwaysScale, 2.2));
    assert!((0.0..=1.0).contains(&m.worker_utilisation));
    assert!((0.0..=1.0).contains(&m.public_core_tu_share));
}

// ----------------------------------------------------------------------
// Trace / observer layer
// ----------------------------------------------------------------------

/// Counts events by kind, for cross-checking against the aggregator.
#[derive(Default)]
struct KindCounts {
    arrived: u64,
    completed: u64,
    dispatched: u64,
    hired: u64,
    booted: u64,
    released: u64,
    decisions: u64,
    settled: u64,
    run_ended: u64,
    last_at: f64,
}

impl Observer for KindCounts {
    fn on_event(&mut self, at: SimTime, event: &TraceEvent) {
        assert!(
            at.as_tu() >= self.last_at,
            "trace times must be monotone: {} after {}",
            at.as_tu(),
            self.last_at
        );
        self.last_at = at.as_tu();
        match event {
            TraceEvent::JobArrived { .. } => self.arrived += 1,
            TraceEvent::JobCompleted { .. } => self.completed += 1,
            TraceEvent::SubtaskDispatched { .. } => self.dispatched += 1,
            TraceEvent::VmHired { .. } => self.hired += 1,
            TraceEvent::VmBooted { .. } => self.booted += 1,
            TraceEvent::VmReleased { .. } => self.released += 1,
            TraceEvent::ScalingDecision { .. } => self.decisions += 1,
            TraceEvent::TierSettled { .. } => self.settled += 1,
            TraceEvent::RunEnded { .. } => self.run_ended += 1,
            _ => {}
        }
    }
}

#[test]
fn trace_stream_is_consistent_with_metrics() {
    let counts = Rc::new(RefCell::new(KindCounts::default()));
    let mut p = Platform::new(short_config(ScalingPolicy::Predictive, 2.5), 0);
    p.add_observer(counts.clone());
    let m = p.run();
    let c = counts.borrow();
    assert_eq!(c.arrived, m.jobs_submitted);
    assert_eq!(c.completed, m.jobs_completed);
    assert_eq!(c.hired, m.vms_hired);
    assert!(c.dispatched > 0 && c.booted > 0 && c.decisions > 0);
    assert_eq!(c.settled, 2, "one settlement per tier");
    assert_eq!(c.run_ended, 1);
}

#[test]
fn extra_observers_do_not_change_the_session() {
    let base = run(short_config(ScalingPolicy::Predictive, 2.5));
    let mut p = Platform::new(short_config(ScalingPolicy::Predictive, 2.5), 0);
    p.add_observer(Rc::new(RefCell::new(NullObserver)));
    p.add_observer(Rc::new(RefCell::new(RingBuffer::new(64))));
    let observed = p.run();
    assert_eq!(base, observed, "observers must not perturb the simulation");
}

#[test]
fn jsonl_observer_streams_a_full_session() {
    let sink = Rc::new(RefCell::new(JsonlWriter::new(Vec::<u8>::new())));
    let mut p = Platform::new(short_config(ScalingPolicy::Predictive, 2.8), 0);
    p.add_observer(sink.clone());
    let m = p.run();
    // The platform (and its tracer clones) are gone; unwrap the sink.
    let writer = Rc::try_unwrap(sink).ok().expect("sole owner after run").into_inner();
    assert!(!writer.errored());
    let out = String::from_utf8(writer.into_inner()).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert!(lines.len() > 1000, "expected a dense trace, got {} lines", lines.len());
    assert!(lines[0].contains("\"kind\":\"vm_hired\""), "first event is a pool hire: {}", lines[0]);
    assert!(lines[lines.len() - 1].contains("\"kind\":\"run_ended\""));
    let completions = lines.iter().filter(|l| l.contains("\"kind\":\"job_completed\"")).count();
    assert_eq!(completions as u64, m.jobs_completed);
}

// ----------------------------------------------------------------------
// Determinism regression
// ----------------------------------------------------------------------

/// Golden fixed-seed run: the trace-aggregator metrics must stay
/// bit-identical across refactors. Regenerate by running this test with
/// `--nocapture` on a mismatch and copying the printed values.
#[test]
fn golden_fixed_seed_metrics() {
    let m = run(short_config(ScalingPolicy::Predictive, 2.5));
    println!(
        "golden: submitted={} completed={} reward={:?} cost={:?} mean_latency={:?} events={}",
        m.jobs_submitted,
        m.jobs_completed,
        m.total_reward.to_bits(),
        m.total_cost.to_bits(),
        m.mean_latency.to_bits(),
        m.events
    );
    assert_eq!(m.jobs_submitted, GOLDEN_SUBMITTED);
    assert_eq!(m.jobs_completed, GOLDEN_COMPLETED);
    assert_eq!(m.total_reward.to_bits(), GOLDEN_REWARD_BITS);
    assert_eq!(m.total_cost.to_bits(), GOLDEN_COST_BITS);
    assert_eq!(m.mean_latency.to_bits(), GOLDEN_MEAN_LATENCY_BITS);
    assert_eq!(m.events, GOLDEN_EVENTS);
}

const GOLDEN_SUBMITTED: u64 = 404;
const GOLDEN_COMPLETED: u64 = 382;
const GOLDEN_REWARD_BITS: u64 = 4688492891057580461;
const GOLDEN_COST_BITS: u64 = 4685544889200563958;
const GOLDEN_MEAN_LATENCY_BITS: u64 = 4625447817232181644;
const GOLDEN_EVENTS: u64 = 13611;

/// Golden fixed-seed *trace*: the full JSONL event stream of a session
/// must stay byte-identical across refactors — a much stronger check than
/// the aggregate metrics above, since it pins the order and payload of
/// every event. Regenerate by running with `--nocapture` on a mismatch
/// and copying the printed hash/length (and say why in EXPERIMENTS.md).
#[test]
fn golden_fixed_seed_trace_bytes() {
    let sink = Rc::new(RefCell::new(JsonlWriter::new(Vec::<u8>::new())));
    let mut p = Platform::new(short_config(ScalingPolicy::Predictive, 2.5), 0);
    p.add_observer(sink.clone());
    let _ = p.run();
    let writer = Rc::try_unwrap(sink).ok().expect("sole owner after run").into_inner();
    let bytes = writer.into_inner();
    // FNV-1a over the raw JSONL bytes: dependency-free and stable.
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in &bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    println!("golden trace: len={} fnv1a={:#018x}", bytes.len(), hash);
    assert_eq!(bytes.len(), GOLDEN_TRACE_LEN);
    assert_eq!(hash, GOLDEN_TRACE_FNV1A);
}

// Regenerated for the causal-spans PR: `job_arrived` events now carry
// `submitted_tu` (the original submission time, needed to stitch the
// admission-deferred span segment), so every job_arrived JSONL line grew
// one field. Payload-only change — the metrics golden above is
// unchanged, no decision flipped. See EXPERIMENTS.md.
const GOLDEN_TRACE_LEN: usize = 4335421;
const GOLDEN_TRACE_FNV1A: u64 = 0x431326e026022972;

// ----------------------------------------------------------------------
// §VI learned policy
// ----------------------------------------------------------------------

#[test]
fn learned_policy_runs_and_converges_on_profitable_arms() {
    let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.0), 321);
    cfg.variable.allocation = AllocationPolicy::Learned;
    cfg.fixed.sim_time_tu = 1_000.0;
    let m = Platform::new(cfg, 0).run();
    assert!(m.jobs_completed > 500, "learned policy must complete work");
    // After exploration the bandit should be at least in the ballpark
    // of the best-constant baseline (same seed, same workload).
    let mut base = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.0), 321);
    base.fixed.sim_time_tu = 1_000.0;
    let mb = Platform::new(base, 0).run();
    assert!(
        m.profit_per_run > 0.4 * mb.profit_per_run,
        "learned {} too far behind best-constant {}",
        m.profit_per_run,
        mb.profit_per_run
    );
}

#[test]
fn learned_policy_is_deterministic() {
    let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.4), 322);
    cfg.variable.allocation = AllocationPolicy::Learned;
    cfg.fixed.sim_time_tu = 400.0;
    let a = Platform::new(cfg.clone(), 0).run();
    let b = Platform::new(cfg, 0).run();
    assert_eq!(a, b);
}

#[test]
fn learned_is_not_in_the_table_i_grid() {
    assert!(!AllocationPolicy::all().contains(&AllocationPolicy::Learned));
    assert_eq!(AllocationPolicy::Learned.name(), "learned");
}

// ----------------------------------------------------------------------
// Calendar FIFO stability at the platform layer
// ----------------------------------------------------------------------

mod fifo {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Simultaneous platform events pop in exactly the order they
        /// were scheduled (the calendar's FIFO tie-break), regardless of
        /// how insertion times interleave.
        #[test]
        fn prop_simultaneous_platform_events_pop_fifo(
            slots in proptest::collection::vec(0u32..4, 1..48),
        ) {
            let mut cal: Calendar<Event> = Calendar::new();
            for (i, &slot) in slots.iter().enumerate() {
                // Tag each event with its insertion index via the job id.
                cal.schedule(
                    SimTime::new(slot as f64),
                    Event::SubtaskDone {
                        job: JobId(i as u32),
                        stage: slot,
                        vm: VmId(i as u32),
                    },
                );
            }
            let mut popped: Vec<(f64, u32)> = Vec::new();
            while let Some(e) = cal.pop() {
                let Event::SubtaskDone { job, .. } = e.event else { unreachable!() };
                popped.push((e.at.as_tu(), job.0));
            }
            prop_assert_eq!(popped.len(), slots.len());
            for w in popped.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "times out of order");
                if w[0].0 == w[1].0 {
                    prop_assert!(
                        w[0].1 < w[1].1,
                        "FIFO violated at t={}: {} before {}",
                        w[0].0, w[0].1, w[1].1
                    );
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Arena id non-resurrection (slot reuse never revives a freed id)
// ----------------------------------------------------------------------

mod arena_reuse {
    use super::super::state::SlotArena;
    use proptest::prelude::*;
    use scan_cloud::instance::InstanceSize;
    use scan_cloud::provider::CloudProvider;
    use scan_cloud::tier::TierCatalog;
    use scan_cloud::vm::VmId;
    use scan_sim::SimTime;

    proptest! {
        /// Random interleavings of insert/remove on the job arena: a
        /// removed slot stays a tombstone for the rest of the session, so
        /// a freed JobId can never denote a different, later job.
        #[test]
        fn prop_slot_arena_never_resurrects_freed_ids(
            ops in proptest::collection::vec(0u32..2, 1..64),
        ) {
            let mut arena: SlotArena<u32> = SlotArena::new();
            let mut next = 0u32;
            let mut live: Vec<u32> = Vec::new();
            let mut freed: Vec<u32> = Vec::new();
            for &op in &ops {
                if op == 1 || live.is_empty() {
                    arena.insert(next as usize, next);
                    live.push(next);
                    next += 1;
                } else {
                    let id = live.remove(live.len() / 2);
                    prop_assert_eq!(arena.remove(id as usize), Some(id));
                    freed.push(id);
                }
                for &id in &freed {
                    prop_assert!(
                        arena.get(id as usize).is_none(),
                        "freed id {} resurrected", id
                    );
                }
                for &id in &live {
                    prop_assert_eq!(arena.get(id as usize), Some(&id));
                }
            }
        }

        /// Same invariant one layer down: the provider hands out VM ids in
        /// strictly increasing order and never reissues a released id, so
        /// "lowest id first" worker selection stays a stable hire-order
        /// tie-break across arbitrary churn.
        #[test]
        fn prop_provider_never_reissues_released_vm_ids(
            ops in proptest::collection::vec(0u32..2, 1..64),
        ) {
            let mut provider = CloudProvider::new(TierCatalog::paper_hybrid(50.0));
            let size = InstanceSize::new(4).expect("4 cores is a catalog size");
            let mut live: Vec<VmId> = Vec::new();
            let mut released: Vec<VmId> = Vec::new();
            let mut last_issued: Option<VmId> = None;
            for (i, &op) in ops.iter().enumerate() {
                let now = SimTime::new(i as f64);
                if op == 1 || live.is_empty() {
                    // Capacity exhaustion is fine — the invariant is about
                    // the ids of the hires that do succeed.
                    if let Ok((id, _)) = provider.hire(size, now) {
                        prop_assert!(
                            last_issued.is_none_or(|p| id > p),
                            "ids not strictly increasing: {:?} after {:?}", id, last_issued
                        );
                        prop_assert!(!released.contains(&id), "released id {:?} reissued", id);
                        last_issued = Some(id);
                        live.push(id);
                    }
                } else {
                    let id = live.remove(live.len() / 2);
                    provider.release(id, now);
                    released.push(id);
                }
                for &id in &released {
                    prop_assert!(
                        provider.vm(id).is_none(),
                        "released VM {:?} still resolvable", id
                    );
                }
            }
        }
    }
}
