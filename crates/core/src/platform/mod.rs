//! The SCAN platform world: the event-driven integration of Data Broker,
//! Scheduler and Workers over the simulated hybrid cloud.
//!
//! Event flow (§III-A.2):
//!
//! 1. **Arrival** — a batch of jobs lands; the allocation policy picks
//!    each job's execution plan, the broker registers and shards its
//!    dataset, and the stage-1 subtasks join their class queues
//!    (`admission`).
//! 2. **Dispatch** — idle workers of the right shape take queue heads
//!    (FIFO). A stalled class triggers the horizontal-scaling decision:
//!    use private capacity, hire public (Eq. 1 delay cost vs hire cost
//!    under the predictive policy), reshape an idle worker (when the
//!    heterogeneous configuration allows), or wait (`dispatch`,
//!    `hiring`).
//! 3. **SubtaskDone** — the worker idles; when a stage's last shard
//!    finishes, the job advances (or completes, earning its reward).
//! 4. **IdleSweep** — workers idle past the timeout are released, so cost
//!    tracks load (`lifecycle`).
//! 5. **Replan** — long-term policies re-optimise; the adaptive policy
//!    additionally refreshes the knowledge-base-learned stage models from
//!    live task logs.
//!
//! Every step is narrated to the sim-trace layer as
//! [`TraceEvent`](scan_sim::TraceEvent)s, and the session's
//! [`SessionMetrics`] are *produced from that stream* by
//! the [`MetricsAggregator`] observer (`accounting`) — the platform
//! itself keeps no metric counters beyond what its policies need. Extra
//! observers (ring buffers, JSONL writers) attach through
//! [`Platform::add_observer`].

mod accounting;
mod admission;
#[doc(hidden)]
pub mod bench_support;
mod dispatch;
mod events;
mod hiring;
mod lifecycle;
mod meters;
mod state;
#[cfg(test)]
mod tests;

pub use accounting::MetricsAggregator;
pub use events::Event;
pub(crate) use events::EventSink;

use crate::broker::DataBroker;
use crate::config::ScanConfig;
use crate::metrics::SessionMetrics;
use events::JobRun;
use meters::PlatformMeters;
use scan_cloud::provider::CloudProvider;
use scan_cloud::shared::SharedLease;
use scan_cloud::tier::{BillingMode, Tier, TierCatalog, TierId};
use scan_metrics::Metrics;
use scan_sched::aggregate::QueueAggregates;
use scan_sched::alloc::{AllocationPolicy, Allocator};
use scan_sched::delay_cost::QueuedJobView;
use scan_sched::estimate::EttEstimator;
use scan_sched::learned::EpsilonGreedyPlanner;
use scan_sched::plan::candidate_plans;
use scan_sched::queue::{QueueSet, TaskClass};
use scan_sim::{
    prof, Calendar, Engine, EventHandler, ObserverHandle, RngHub, SimRng, SimTime, StepOutcome,
    TenantId, Tracer,
};
use scan_workload::arrivals::ArrivalProcess;
use scan_workload::gatk::PipelineModel;
use scan_workload::reward::RewardFn;
use state::{
    AdmissionBacklog, BootingCounts, BusyTable, ClassCounts, IdlePools, SlotArena, StandingTargets,
};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// How a platform participates in a multi-tenant fleet: its identity,
/// its lease on the shared provider pool, and the fleet's run-to-
/// completion and fairness knobs. Solo sessions have none of this.
pub(crate) struct TenantSetup {
    /// This platform's tenant id within the fleet.
    pub(crate) tenant: TenantId,
    /// Handle on the fleet-wide shared capacity ledger.
    pub(crate) lease: SharedLease,
    /// Stop drawing from the arrival process after this many jobs, then
    /// tear the tenant down once they all complete (`None` = run to the
    /// horizon like a solo session).
    pub(crate) max_jobs: Option<u64>,
    /// Defer new admissions while the shared pool is exhausted and this
    /// tenant sits at or above its fair share.
    pub(crate) fair_share: bool,
}

/// The assembled platform; drives itself through [`Engine`]. A thin
/// coordinator: the subsystem logic lives in this module's submodules,
/// each an `impl Platform` block over one concern.
pub struct Platform {
    cfg: Arc<ScanConfig>,
    reward: RewardFn,
    true_model: PipelineModel,
    arrivals: ArrivalProcess,
    broker: DataBroker,
    provider: CloudProvider,
    private_tier: TierId,
    public_tier: TierId,
    estimator: EttEstimator,
    allocator: Allocator,
    queues: QueueSet<events::SubtaskRef>,
    /// Live job runs, arena-indexed by `JobId` (ids are dense arrival
    /// ordinals; completed jobs tombstone their slot).
    jobs: SlotArena<JobRun>,
    /// Per-shape idle-worker pools with deterministic min-id pop.
    idle: IdlePools,
    /// Busy workers with cached finish time and shape.
    busy: BusyTable,
    /// Hires/reshapes in flight per class, so a stalled queue does not
    /// hire one VM per dispatch pass.
    pending: ClassCounts,
    /// VMs booting per shape, maintained on hire/reshape/`VmReady` —
    /// the O(1) replacement for the all-VMs booting scan the scaling
    /// inputs used to do.
    booting: BootingCounts,
    /// Incremental Eq. 1 state: per-class delay-cost aggregates
    /// mirroring `queues` (updated on every push/pop), so scaling
    /// decisions price the queue from cached terms instead of a
    /// per-decision walk (DESIGN §7c).
    queue_agg: QueueAggregates,
    /// Which class an in-flight hire/reshape is reserved for, keyed by
    /// VM id slot.
    vm_reserved_for: SlotArena<TaskClass>,
    /// Standing worker-pool targets per instance size (VM counts): "the
    /// SCAN Scheduler maintains analytic task queues and pools of SCAN
    /// workers" (§III-A). Sized from the learned model + load forecast.
    standing_target: StandingTargets,
    exec_noise: SimRng,
    /// §VI learned policy: the ε-greedy bandit and its RNG stream. The
    /// bandit works in *epochs* (one arm per replan period, scored by the
    /// epoch's realised profit per run) so worker pools stay coherent —
    /// mixing many plan shapes job-by-job thrashes the pools.
    learned: Option<EpsilonGreedyPlanner>,
    learned_rng: SimRng,
    learned_arm: Option<usize>,
    epoch_start: (f64, f64, u64), // (reward, cost, completed) at epoch start
    // --- fleet tenancy (inert in solo sessions) ---
    /// Who this platform is within a fleet; `TenantId::SOLO` otherwise.
    tenant: TenantId,
    /// Arrival-stream cap for run-to-completion fleets; `None` = horizon.
    max_jobs: Option<u64>,
    /// Whether the fair-share admission gate is armed.
    fair_share: bool,
    /// Jobs drawn from the arrival stream so far (admitted or deferred).
    taken_jobs: u64,
    /// Jobs deferred by the fair-share gate, awaiting re-admission.
    backlog: AdmissionBacklog,
    /// Live entries in the `jobs` arena (admitted, not yet completed).
    live_jobs: u64,
    // --- adaptive-policy state ---
    observed_rate: f64,
    observed_size: f64,
    last_arrival_at: SimTime,
    adaptive_ingest_counter: u64,
    // --- learned-epoch scoring (the only metrics the platform keeps) ---
    total_reward: f64,
    completed: u64,
    // --- observability ---
    tracer: Tracer,
    aggregator: Rc<RefCell<MetricsAggregator>>,
    /// Quantitative metrics registry handle (disabled by default; see
    /// [`Platform::set_metrics`]). Distinct from the trace layer: metrics
    /// are aggregates, traces are the event narration.
    metrics: Metrics,
    /// The platform's registered metric ids; `None` until `set_metrics`.
    meters: Option<PlatformMeters>,
    /// Last sampled cumulative cost per tier, for the spend-rate series.
    last_tier_cost: [f64; 2],
    /// Scratch for the naive Eq. 1 queue view. Since the incremental
    /// aggregates took over pricing, the full-walk fill only runs as the
    /// debug-build oracle cross-checking them (DESIGN §7c); it still
    /// reuses this buffer so even the oracle allocates nothing per event.
    scaling_scratch: Vec<QueuedJobView>,
    /// Per-job stamps for the queue-view dedup: `scaling_seen[job] ==
    /// scaling_stamp` means "already counted this fill". Bumping the
    /// stamp clears the whole set in O(1).
    scaling_seen: Vec<u32>,
    scaling_stamp: u32,
}

impl Platform {
    /// Builds the platform for one `(config, repetition)` pair.
    ///
    /// Takes the config as `impl Into<Arc<ScanConfig>>`: solo callers
    /// keep passing an owned `ScanConfig`, while fleet construction
    /// shares one `Arc` across all tenants instead of deep-cloning the
    /// config per platform.
    pub fn new(cfg: impl Into<Arc<ScanConfig>>, repetition: u64) -> Self {
        Self::build(cfg.into(), repetition, None)
    }

    /// Builds one fleet tenant's platform: a normal `(config,
    /// repetition)` build whose provider additionally holds a lease on
    /// the fleet's shared capacity pool.
    pub(crate) fn new_tenant(cfg: Arc<ScanConfig>, repetition: u64, setup: TenantSetup) -> Self {
        Self::build(cfg, repetition, Some(setup))
    }

    fn build(cfg: Arc<ScanConfig>, repetition: u64, tenancy: Option<TenantSetup>) -> Self {
        let hub = RngHub::new(cfg.seed, repetition);
        let true_model = cfg.true_model();
        let mut kb_rng = hub.stream("kb-bootstrap");
        let broker = DataBroker::bootstrap(&true_model, cfg.fixed.profile_noise, &mut kb_rng);

        let catalog = TierCatalog::new(vec![
            Tier {
                name: "private".into(),
                cost_per_core_tu: cfg.fixed.private_core_cost,
                capacity_cores: Some(cfg.fixed.private_capacity_cores),
                billing: BillingMode::BusyTime,
            },
            Tier {
                name: "public".into(),
                cost_per_core_tu: cfg.variable.public_core_cost,
                capacity_cores: None,
                billing: BillingMode::HiredTime,
            },
        ]);
        let mut provider = CloudProvider::new(catalog);
        let (tenant, max_jobs, fair_share) = match tenancy {
            Some(setup) => {
                provider.attach_shared(setup.lease, setup.tenant);
                (setup.tenant, setup.max_jobs, setup.fair_share)
            }
            None => (TenantId::SOLO, None, false),
        };

        let arrivals = ArrivalProcess::new(
            cfg.arrival_config(),
            hub.stream("arrival-timing"),
            hub.stream("arrival-sizes"),
        );

        let estimator = EttEstimator::new(broker.learned_model().clone(), cfg.fixed.eqt_alpha);
        let allocator = Allocator::new(cfg.variable.allocation, cfg.fixed.replan_period_tu);
        let learned = (cfg.variable.allocation == AllocationPolicy::Learned).then(|| {
            // Warm-start each arm with its model-predicted profit, so
            // exploration starts from the analytic ranking instead of
            // paying full price to try arms the model knows are bad.
            let arms = candidate_plans(broker.learned_model(), cfg.fixed.mean_job_size);
            let objective = scan_sched::plan::PlanObjective {
                reward: cfg.reward_fn(),
                price_per_core_tu: cfg.fixed.private_core_cost * cfg.fixed.overhead_price_factor,
                overhead_tu: 1.0,
            };
            let priors: Vec<f64> = arms
                .iter()
                .map(|plan| {
                    scan_sched::plan::evaluate_plan(
                        broker.learned_model(),
                        cfg.fixed.mean_job_size,
                        plan,
                        &objective,
                    )
                    .profit
                })
                .collect();
            EpsilonGreedyPlanner::with_priors(arms, priors, 0.05)
        });
        let reward = cfg.reward_fn();
        let observed_rate = cfg.arrival_config().mean_job_rate();
        let observed_size = cfg.fixed.mean_job_size;

        // The session's metrics are an observer like any other; it is
        // attached first so it sees every event of the run.
        let aggregator = Rc::new(RefCell::new(MetricsAggregator::new()));
        let mut tracer = Tracer::disabled();
        tracer.attach(aggregator.clone());

        Platform {
            reward,
            true_model,
            arrivals,
            broker,
            provider,
            private_tier: TierId(0),
            public_tier: TierId(1),
            estimator,
            allocator,
            queues: QueueSet::new(),
            jobs: SlotArena::new(),
            idle: IdlePools::new(),
            busy: BusyTable::new(),
            pending: ClassCounts::new(),
            booting: BootingCounts::new(),
            queue_agg: QueueAggregates::new(),
            vm_reserved_for: SlotArena::new(),
            standing_target: StandingTargets::default(),
            exec_noise: hub.stream("exec-noise"),
            learned,
            learned_rng: hub.stream("learned-policy"),
            learned_arm: None,
            epoch_start: (0.0, 0.0, 0),
            tenant,
            max_jobs,
            fair_share,
            taken_jobs: 0,
            backlog: AdmissionBacklog::default(),
            live_jobs: 0,
            observed_rate,
            observed_size,
            last_arrival_at: SimTime::ZERO,
            adaptive_ingest_counter: 0,
            total_reward: 0.0,
            completed: 0,
            tracer,
            aggregator,
            metrics: Metrics::disabled(),
            meters: None,
            last_tier_cost: [0.0; 2],
            scaling_scratch: Vec::new(),
            scaling_seen: Vec::new(),
            scaling_stamp: 0,
            cfg,
        }
    }

    /// Attaches a trace observer to the session. Must be called before
    /// [`Platform::run`]: the subsystems snapshot the sink list when the
    /// run starts, so later attachments would miss provider events.
    pub fn add_observer(&mut self, sink: ObserverHandle) {
        self.tracer.attach(sink);
    }

    /// Runs the full session and returns its metrics.
    pub fn run(mut self) -> SessionMetrics {
        let horizon = SimTime::new(self.cfg.fixed.sim_time_tu);
        let mut engine: Engine<Event> = Engine::with_horizon(horizon);
        engine.set_metrics(&self.metrics);
        let cal = engine.calendar_mut();
        // Pre-size the heap for the steady-state backlog (one completion
        // per in-flight subtask plus the periodic ticks) so it never
        // re-heapifies mid-run.
        cal.reserve(1024);
        self.start(horizon, cal);
        let report = engine.run(&mut self);
        self.finish(report.ended_at, report.events_dispatched)
    }

    /// Boots the session: hands the provider the (now final) sink list,
    /// hires the initial standing pools, and schedules the first arrival
    /// and periodic ticks into `sink`. A solo [`Platform::run`] does this
    /// against the engine's calendar; a fleet does it per tenant against
    /// the shared, tenant-tagging calendar.
    pub(crate) fn start(&mut self, horizon: SimTime, sink: &mut impl EventSink) {
        // Hand the provider the sink list before the first hire so the
        // initial standing-pool hires are narrated too.
        self.provider.set_tracer(self.tracer.clone());
        self.resize_standing_pools(SimTime::ZERO, sink);
        sink.schedule(self.arrivals.next_arrival_at().min(horizon), Event::Arrival);
        sink.schedule(SimTime::new(1.0), Event::IdleSweep);
        sink.schedule(SimTime::new(self.cfg.fixed.replan_period_tu), Event::Replan);
    }

    /// Dispatches one event to its subsystem. The solo [`EventHandler`]
    /// impl and the fleet multiplexer both route through here.
    pub(crate) fn handle_event(&mut self, now: SimTime, event: Event, sink: &mut impl EventSink) {
        match event {
            Event::Arrival => {
                prof::scope!("arrival");
                self.on_arrival(now, sink)
            }
            Event::VmReady(vm) => {
                prof::scope!("vm_ready");
                self.on_vm_ready(now, vm, sink)
            }
            Event::SubtaskDone { job, stage, vm } => {
                prof::scope!("subtask_done");
                self.on_subtask_done(now, job, stage as usize, vm, sink)
            }
            Event::IdleSweep => {
                prof::scope!("idle_sweep");
                self.on_idle_sweep(now, sink)
            }
            Event::Replan => {
                prof::scope!("replan");
                self.on_replan(now, sink)
            }
        }
    }

    /// Whether a capped (fleet) tenant has fully drained: every job it
    /// will ever take has been taken, admitted, and completed. Always
    /// false for solo sessions (`max_jobs` unset), so their lifecycle is
    /// exactly the pre-fleet run-to-horizon.
    pub(crate) fn finished(&self) -> bool {
        self.arrivals_exhausted() && self.backlog.is_empty() && self.live_jobs == 0
    }

    /// Whether the arrival stream has been capped off.
    pub(super) fn arrivals_exhausted(&self) -> bool {
        self.max_jobs.is_some_and(|cap| self.taken_jobs >= cap)
    }
}

impl EventHandler for Platform {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, cal: &mut Calendar<Event>) -> StepOutcome {
        self.handle_event(now, event, cal);
        StepOutcome::Continue
    }
}
