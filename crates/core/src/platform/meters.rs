//! The platform's metric ids and their registration.
//!
//! One [`PlatformMeters`] is built per session by [`Platform::set_metrics`]
//! and records through a shared [`Metrics`] handle. Registration happens
//! in one fixed order (platform meters, then provider meters, then the
//! engine's batch histogram), so every repetition produces a registry of
//! identical shape — the precondition for the deterministic cross-thread
//! merge. Without `set_metrics` the platform carries a disabled handle
//! and none of the hot paths touch a registry.

use super::Platform;
use scan_metrics::{CounterId, HistogramId, Metrics, SeriesId, SeriesKind};

/// Index into [`PlatformMeters::choice`] per scaling outcome (the trace
/// layer's `ScalingChoice` plus the platform-level throttle veto).
#[derive(Debug, Clone, Copy)]
pub(super) enum ChoiceMeter {
    /// Let the queue wait.
    Wait = 0,
    /// Hire from the private tier.
    HirePrivate = 1,
    /// Private hire vetoed by the Eq. 1 throttle.
    ThrottledPrivate = 2,
    /// Hire from the public tier.
    HirePublic = 3,
    /// Reshape an idle worker instead of hiring.
    Reshape = 4,
}

impl ChoiceMeter {
    pub(super) const LABELS: [&'static str; 5] =
        ["wait", "hire_private", "throttled_private", "hire_public", "reshape"];
}

/// Every metric id the platform records through, plus the shared handle.
#[derive(Debug, Clone)]
pub(super) struct PlatformMeters {
    pub(super) metrics: Metrics,
    /// `dispatch_queue_wait_tu{stage}`: realised queue wait per dispatch.
    pub(super) queue_wait: Vec<HistogramId>,
    /// `dispatch_service_time_tu{stage}`: busy span per dispatched subtask.
    pub(super) service_time: Vec<HistogramId>,
    /// `scaling_margin_cu{outcome}`: |delay cost − hire cost| of priced
    /// decisions, split by which side won.
    pub(super) margin_hire: HistogramId,
    pub(super) margin_wait: HistogramId,
    /// `scaling_choice_total{choice}`, indexed by [`ChoiceMeter`].
    pub(super) choice: [CounterId; 5],
    /// `broker_split_fanout`: stage-1 shards per admitted job.
    pub(super) split_fanout: HistogramId,
    /// `broker_merge_fanout`: shards gathered per completed stage.
    pub(super) merge_fanout: HistogramId,
    /// `vm_utilisation`: busy cores over hired cores, time-weighted.
    pub(super) util: SeriesId,
    /// `vm_busy_cores`: cores running subtasks, time-weighted.
    pub(super) busy_cores: SeriesId,
    /// `queue_depth`: total queued subtasks, time-weighted.
    pub(super) queue_depth: SeriesId,
    /// `tier_spend_rate{tier}`: cost accrued per TU, per tier.
    pub(super) spend_rate: [SeriesId; 2],
    /// `slo_violations_total`: completed jobs that missed the SLO target.
    pub(super) slo_violations: CounterId,
    /// `slo_burn_rate`: SLO violations per TU, windowed.
    pub(super) slo_burn: SeriesId,
}

impl Platform {
    /// Attaches a metrics registry to the session. Must be called before
    /// [`Platform::run`]; registers every platform metric (and the
    /// provider's) in a fixed order. A disabled handle is a no-op.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        if !metrics.is_enabled() {
            return;
        }
        let n_stages = self.true_model.n_stages();
        let meters = metrics.with_registry(|r| {
            let stage_label = |i: usize| i.to_string();
            let queue_wait = (0..n_stages)
                .map(|i| {
                    r.histogram(
                        "dispatch_queue_wait_tu",
                        "stage",
                        &stage_label(i),
                        "tu",
                        "Realised queue wait per dispatched subtask, by stage",
                    )
                })
                .collect();
            let service_time = (0..n_stages)
                .map(|i| {
                    r.histogram(
                        "dispatch_service_time_tu",
                        "stage",
                        &stage_label(i),
                        "tu",
                        "Busy span per dispatched subtask (exec + staging), by stage",
                    )
                })
                .collect();
            let margin_hire = r.histogram(
                "scaling_margin_cu",
                "outcome",
                "hire",
                "cu",
                "Eq. 1 |delay cost - hire cost| when the decision was to hire",
            );
            let margin_wait = r.histogram(
                "scaling_margin_cu",
                "outcome",
                "wait",
                "cu",
                "Eq. 1 |delay cost - hire cost| when the decision was to wait",
            );
            let choice = ChoiceMeter::LABELS.map(|label| {
                r.counter(
                    "scaling_choice_total",
                    "choice",
                    label,
                    "1",
                    "Horizontal-scaling decisions, by outcome",
                )
            });
            let split_fanout = r.histogram(
                "broker_split_fanout",
                "",
                "",
                "1",
                "Stage-1 shards registered per admitted job",
            );
            let merge_fanout = r.histogram(
                "broker_merge_fanout",
                "",
                "",
                "1",
                "Shards gathered when a job's stage completes",
            );
            let util = r.series(
                SeriesKind::TimeWeightedMean,
                "vm_utilisation",
                "",
                "",
                "ratio",
                "Busy cores over hired cores (idle-sweep sampled)",
            );
            let busy_cores = r.series(
                SeriesKind::TimeWeightedMean,
                "vm_busy_cores",
                "",
                "",
                "cores",
                "Cores running subtasks (idle-sweep sampled)",
            );
            let queue_depth = r.series(
                SeriesKind::TimeWeightedMean,
                "queue_depth",
                "",
                "",
                "1",
                "Total queued subtasks (idle-sweep sampled)",
            );
            let spend_rate = ["private", "public"].map(|tier| {
                r.series(
                    SeriesKind::Rate,
                    "tier_spend_rate",
                    "tier",
                    tier,
                    "cu_per_tu",
                    "Cost accrued per TU, by tier",
                )
            });
            let slo_violations = r.counter(
                "slo_violations_total",
                "",
                "",
                "jobs",
                "Completed jobs whose latency missed the configured SLO target",
            );
            let slo_burn = r.series(
                SeriesKind::Rate,
                "slo_burn_rate",
                "",
                "",
                "jobs_per_tu",
                "SLO violations per TU (windowed burn rate)",
            );
            PlatformMeters {
                metrics: Metrics::disabled(), // patched below
                queue_wait,
                service_time,
                margin_hire,
                margin_wait,
                choice,
                split_fanout,
                merge_fanout,
                util,
                busy_cores,
                queue_depth,
                spend_rate,
                slo_violations,
                slo_burn,
            }
        });
        if let Some(mut meters) = meters {
            meters.metrics = metrics.clone();
            self.meters = Some(meters);
        }
        self.metrics = metrics.clone();
        self.provider.set_metrics(metrics);
    }
}
