//! Domain-level trace observers beyond the session's own
//! [`MetricsAggregator`](crate::platform::MetricsAggregator).
//!
//! The workhorse here is [`DecisionStats`]: a counting/summary observer
//! that folds a session's [`TraceEvent`] stream into the per-cell
//! statistics the §IV-B sweep reports — scaling-decision counts per
//! [`ScalingChoice`], a queue-depth histogram, and per-tier settled
//! costs. It is deliberately integer-first (every count is a `u64`, the
//! depth mean is a ratio of integer accumulators) so that merging
//! repetition summaries is exact and order-insensitive; the only `f64`
//! accumulators are the per-tier settled costs, which the sweep merges in
//! repetition order to keep N-thread runs bit-identical to 1-thread runs.

use scan_sim::{Merge, Observer, ObserverFactory, ScalingChoice, SimTime, TraceEvent};
use std::fmt::Write as _;

/// Number of power-of-two queue-depth buckets kept by [`DecisionStats`]:
/// bucket 0 holds depth 0, bucket `i ≥ 1` holds depths in
/// `[2^(i-1), 2^i)`, and the last bucket absorbs everything deeper.
pub const DEPTH_BUCKETS: usize = 12;

/// Index of [`ScalingChoice`] variants into the decision-count array.
fn choice_index(choice: ScalingChoice) -> usize {
    match choice {
        ScalingChoice::Wait => 0,
        ScalingChoice::HirePrivate => 1,
        ScalingChoice::ThrottledPrivate => 2,
        ScalingChoice::HirePublic => 3,
        ScalingChoice::Reshape => 4,
    }
}

/// All [`ScalingChoice`] variants in decision-count-array order.
const CHOICES: [ScalingChoice; 5] = [
    ScalingChoice::Wait,
    ScalingChoice::HirePrivate,
    ScalingChoice::ThrottledPrivate,
    ScalingChoice::HirePublic,
    ScalingChoice::Reshape,
];

/// End-of-run settlement totals for one tier, plus its hire count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierTotals {
    /// Total cost charged against the tier (CU), summed over sessions.
    pub cost: f64,
    /// Total core·TU provisioned on the tier, summed over sessions.
    pub core_tu: f64,
    /// VMs hired on the tier.
    pub hired: u64,
}

/// Counting/summary observer: folds one or more sessions' trace streams
/// into scaling-decision counts, a queue-depth histogram and per-tier
/// settled costs.
///
/// One instance observes one session (observers are single-threaded, see
/// the `scan_sim::trace` module docs); per-session instances from a
/// parallel sweep are then combined with [`Merge::merge`] in repetition
/// order. All counts are integers, so the merged result is independent of
/// how sessions were scheduled onto threads.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionStats {
    /// Scaling-decision counts, indexed per [`choice_index`].
    decisions: [u64; 5],
    /// Power-of-two queue-depth histogram (see [`DEPTH_BUCKETS`]).
    depth_hist: [u64; DEPTH_BUCKETS],
    /// Sum of sampled depths (integer — exact under merge).
    depth_sum: u64,
    /// Number of depth samples.
    depth_samples: u64,
    /// Deepest sampled queue.
    peak_depth: u32,
    /// Per-tier settlement totals, indexed by tier number (0 = private,
    /// 1 = public; grown on demand).
    tiers: Vec<TierTotals>,
    /// Sessions folded in (1 for a freshly observed session; grows under
    /// [`Merge::merge`]).
    sessions: u64,
}

impl Default for DecisionStats {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionStats {
    /// An empty accumulator, ready to observe one session.
    pub fn new() -> Self {
        DecisionStats {
            decisions: [0; 5],
            depth_hist: [0; DEPTH_BUCKETS],
            depth_sum: 0,
            depth_samples: 0,
            peak_depth: 0,
            tiers: Vec::new(),
            sessions: 1,
        }
    }

    /// Histogram bucket for a sampled depth.
    fn bucket(depth: u32) -> usize {
        if depth == 0 {
            0
        } else {
            ((32 - depth.leading_zeros()) as usize).min(DEPTH_BUCKETS - 1)
        }
    }

    /// Times a given choice was decided.
    pub fn decided(&self, choice: ScalingChoice) -> u64 {
        self.decisions[choice_index(choice)]
    }

    /// Total scaling decisions observed.
    pub fn total_decisions(&self) -> u64 {
        self.decisions.iter().sum()
    }

    /// Hire decisions (private + public + reshape — every decision that
    /// grew capacity for the stalled class).
    pub fn hire_decisions(&self) -> u64 {
        self.decided(ScalingChoice::HirePrivate)
            + self.decided(ScalingChoice::HirePublic)
            + self.decided(ScalingChoice::Reshape)
    }

    /// Wait decisions (including Eq. 1-vetoed private hires).
    pub fn wait_decisions(&self) -> u64 {
        self.decided(ScalingChoice::Wait) + self.decided(ScalingChoice::ThrottledPrivate)
    }

    /// Mean sampled queue depth (a per-sample mean, not the time-weighted
    /// mean `SessionMetrics` reports; samples are taken after every
    /// dispatch pass and stage enqueue).
    pub fn mean_depth(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_samples as f64
        }
    }

    /// Deepest queue sampled.
    pub fn peak_depth(&self) -> u32 {
        self.peak_depth
    }

    /// Number of queue-depth samples folded in.
    pub fn depth_samples(&self) -> u64 {
        self.depth_samples
    }

    /// The power-of-two depth histogram (bucket 0 = empty queue, bucket
    /// `i ≥ 1` = depths in `[2^(i-1), 2^i)`, last bucket open-ended).
    pub fn depth_histogram(&self) -> &[u64; DEPTH_BUCKETS] {
        &self.depth_hist
    }

    /// Settlement totals for one tier (zeroes for a tier never settled).
    pub fn tier(&self, tier: u32) -> TierTotals {
        self.tiers.get(tier as usize).copied().unwrap_or_default()
    }

    /// Total settled cost across tiers (CU). Matches
    /// `SessionMetrics::total_cost` for a single session, summed over
    /// sessions once merged.
    pub fn total_cost(&self) -> f64 {
        self.tiers.iter().map(|t| t.cost).sum()
    }

    /// Total VMs hired across tiers.
    pub fn vms_hired(&self) -> u64 {
        self.tiers.iter().map(|t| t.hired).sum()
    }

    /// Sessions folded into this accumulator.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    fn tier_mut(&mut self, tier: u32) -> &mut TierTotals {
        let idx = tier as usize;
        if self.tiers.len() <= idx {
            self.tiers.resize(idx + 1, TierTotals::default());
        }
        &mut self.tiers[idx]
    }

    /// Appends this accumulator as one hand-assembled JSON object (no
    /// trailing newline) — the payload of the sweep's `--cell-trace`
    /// JSONL lines. Keys and shape are documented in
    /// `docs/TRACE_SCHEMA.md`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"sessions\":");
        let _ = write!(out, "{}", self.sessions);
        out.push_str(",\"decisions\":{");
        for (i, choice) in CHOICES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", choice.name(), self.decided(*choice));
        }
        out.push_str("},\"queue_depth\":{\"samples\":");
        let _ = write!(out, "{}", self.depth_samples);
        let _ = write!(out, ",\"mean\":{:.4},\"peak\":{}", self.mean_depth(), self.peak_depth);
        out.push_str(",\"hist\":[");
        for (i, n) in self.depth_hist.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{n}");
        }
        out.push_str("]},\"tiers\":[");
        for (i, t) in self.tiers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"tier\":{i},\"cost\":{:.4},\"core_tu\":{:.4},\"hired\":{}}}",
                t.cost, t.core_tu, t.hired
            );
        }
        out.push_str("]}");
    }
}

impl Observer for DecisionStats {
    fn on_event(&mut self, _at: SimTime, event: &TraceEvent) {
        match *event {
            TraceEvent::ScalingDecision { choice, .. } => {
                self.decisions[choice_index(choice)] += 1;
            }
            TraceEvent::QueueDepthSampled { depth } => {
                self.depth_hist[Self::bucket(depth)] += 1;
                self.depth_sum += depth as u64;
                self.depth_samples += 1;
                self.peak_depth = self.peak_depth.max(depth);
            }
            TraceEvent::VmHired { tier, .. } => self.tier_mut(tier).hired += 1,
            TraceEvent::TierSettled { tier, cost, core_tu } => {
                let t = self.tier_mut(tier);
                t.cost += cost;
                t.core_tu += core_tu;
            }
            _ => {}
        }
    }
}

impl Merge for DecisionStats {
    fn merge(&mut self, other: Self) {
        for (a, b) in self.decisions.iter_mut().zip(other.decisions) {
            *a += b;
        }
        for (a, b) in self.depth_hist.iter_mut().zip(other.depth_hist) {
            *a += b;
        }
        self.depth_sum += other.depth_sum;
        self.depth_samples += other.depth_samples;
        self.peak_depth = self.peak_depth.max(other.peak_depth);
        if self.tiers.len() < other.tiers.len() {
            self.tiers.resize(other.tiers.len(), TierTotals::default());
        }
        for (a, b) in self.tiers.iter_mut().zip(other.tiers) {
            a.cost += b.cost;
            a.core_tu += b.core_tu;
            a.hired += b.hired;
        }
        self.sessions += other.sessions;
    }
}

/// Builds one [`DecisionStats`] per session; the summary is the stats
/// value itself. This is the factory `sweep_grid_with` is normally run
/// with.
#[derive(Debug, Default, Clone, Copy)]
pub struct DecisionStatsFactory;

impl ObserverFactory for DecisionStatsFactory {
    type Obs = DecisionStats;
    type Summary = DecisionStats;

    fn build(&self, _session: u64) -> DecisionStats {
        DecisionStats::new()
    }

    fn finish(&self, obs: DecisionStats) -> DecisionStats {
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ScanConfig, VariableParams};
    use crate::session::run_session_with;
    use scan_sched::scaling::ScalingPolicy;

    fn decision(choice: ScalingChoice) -> TraceEvent {
        TraceEvent::ScalingDecision {
            stage: 0,
            cores: 4,
            queued_jobs: 3,
            delay_cost: 10.0,
            hire_cost: 5.0,
            choice,
        }
    }

    #[test]
    fn depth_buckets_cover_the_line() {
        assert_eq!(DecisionStats::bucket(0), 0);
        assert_eq!(DecisionStats::bucket(1), 1);
        assert_eq!(DecisionStats::bucket(2), 2);
        assert_eq!(DecisionStats::bucket(3), 2);
        assert_eq!(DecisionStats::bucket(4), 3);
        assert_eq!(DecisionStats::bucket(7), 3);
        assert_eq!(DecisionStats::bucket(8), 4);
        assert_eq!(DecisionStats::bucket(1 << 10), DEPTH_BUCKETS - 1);
        assert_eq!(DecisionStats::bucket(u32::MAX), DEPTH_BUCKETS - 1);
    }

    #[test]
    fn folds_decisions_depths_and_tiers() {
        let mut s = DecisionStats::new();
        let at = SimTime::new(1.0);
        s.on_event(at, &decision(ScalingChoice::HirePublic));
        s.on_event(at, &decision(ScalingChoice::Wait));
        s.on_event(at, &decision(ScalingChoice::Wait));
        s.on_event(at, &decision(ScalingChoice::ThrottledPrivate));
        s.on_event(at, &decision(ScalingChoice::Reshape));
        for depth in [0u32, 3, 9] {
            s.on_event(at, &TraceEvent::QueueDepthSampled { depth });
        }
        s.on_event(at, &TraceEvent::VmHired { vm: 1, tier: 1, cores: 4 });
        s.on_event(at, &TraceEvent::VmHired { vm: 2, tier: 0, cores: 4 });
        s.on_event(at, &TraceEvent::TierSettled { tier: 0, cost: 100.0, core_tu: 20.0 });
        s.on_event(at, &TraceEvent::TierSettled { tier: 1, cost: 40.0, core_tu: 4.0 });

        assert_eq!(s.decided(ScalingChoice::Wait), 2);
        assert_eq!(s.decided(ScalingChoice::HirePublic), 1);
        assert_eq!(s.total_decisions(), 5);
        assert_eq!(s.hire_decisions(), 2); // public + reshape
        assert_eq!(s.wait_decisions(), 3); // wait ×2 + throttled
        assert_eq!(s.depth_samples(), 3);
        assert_eq!(s.peak_depth(), 9);
        assert!((s.mean_depth() - 4.0).abs() < 1e-12);
        assert_eq!(s.depth_histogram()[0], 1); // depth 0
        assert_eq!(s.depth_histogram()[2], 1); // depth 3
        assert_eq!(s.depth_histogram()[4], 1); // depth 9
        assert_eq!(s.vms_hired(), 2);
        assert_eq!(s.tier(0).hired, 1);
        assert!((s.total_cost() - 140.0).abs() < 1e-12);
        assert!((s.tier(1).core_tu - 4.0).abs() < 1e-12);
        assert_eq!(s.tier(7), TierTotals::default());
    }

    #[test]
    fn merge_is_exact_and_counts_sessions() {
        let at = SimTime::ZERO;
        let mut a = DecisionStats::new();
        a.on_event(at, &decision(ScalingChoice::Wait));
        a.on_event(at, &TraceEvent::QueueDepthSampled { depth: 5 });
        a.on_event(at, &TraceEvent::TierSettled { tier: 0, cost: 1.5, core_tu: 2.0 });
        let mut b = DecisionStats::new();
        b.on_event(at, &decision(ScalingChoice::HirePrivate));
        b.on_event(at, &TraceEvent::QueueDepthSampled { depth: 7 });
        // b settles a tier a never saw: merge must grow the tier table.
        b.on_event(at, &TraceEvent::TierSettled { tier: 1, cost: 4.0, core_tu: 1.0 });

        let mut merged = a.clone();
        merged.merge(b.clone());
        assert_eq!(merged.sessions(), 2);
        assert_eq!(merged.total_decisions(), 2);
        assert_eq!(merged.depth_samples(), 2);
        assert_eq!(merged.peak_depth(), 7);
        assert!((merged.mean_depth() - 6.0).abs() < 1e-12);
        assert!((merged.total_cost() - 5.5).abs() < 1e-12);

        // Counts commute (the f64 tier sums are merged in a fixed order by
        // the sweep, but with disjoint tiers the other order is exact too).
        let mut swapped = b;
        swapped.merge(a);
        assert_eq!(swapped, merged);
    }

    #[test]
    fn json_payload_is_wellformed() {
        let mut s = DecisionStats::new();
        let at = SimTime::ZERO;
        s.on_event(at, &decision(ScalingChoice::HirePublic));
        s.on_event(at, &TraceEvent::QueueDepthSampled { depth: 2 });
        s.on_event(at, &TraceEvent::TierSettled { tier: 0, cost: 12.25, core_tu: 3.5 });
        let mut out = String::new();
        s.write_json(&mut out);
        assert!(out.starts_with('{') && out.ends_with('}'));
        assert_eq!(out.matches('"').count() % 2, 0);
        assert!(out.contains("\"hire_public\":1"));
        assert!(out.contains("\"samples\":1"));
        assert!(out.contains("\"cost\":12.2500"));
        assert!(!out.contains('\n'));
    }

    /// The summary observer's fold must agree with [`MetricsAggregator`]
    /// wherever the two overlap, on a real session's event stream.
    #[test]
    fn fold_matches_metrics_aggregator_on_a_live_stream() {
        let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 0.9), 11);
        cfg.fixed.sim_time_tu = 200.0;
        let (metrics, stats) = run_session_with(&cfg, 0, DecisionStats::new());
        assert!(metrics.jobs_completed > 0, "session must do real work");
        assert_eq!(stats.vms_hired(), metrics.vms_hired);
        assert_eq!(stats.peak_depth() as usize, metrics.peak_queue_len);
        assert_eq!(stats.total_cost(), metrics.total_cost, "same TierSettled stream, same sum");
        assert!(stats.total_decisions() > 0, "a loaded session takes scaling decisions");
        assert!(stats.depth_samples() > 0, "dispatch passes sample queue depth");
    }
}
