//! Experiment configuration: Table III (fixed) × Table I (variable).

use scan_sched::alloc::AllocationPolicy;
use scan_sched::scaling::ScalingPolicy;
use scan_workload::arrivals::ArrivalConfig;
use scan_workload::gatk::{PipelineModel, GB_PER_SIZE_UNIT};
use scan_workload::reward::RewardFn;
use serde::{Deserialize, Serialize};

/// Table III — "miscellaneous simulation attributes fixed across all
/// runs" — plus the platform knobs the paper fixes in prose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedParams {
    /// Simulation horizon, TU (Table III: 10 000).
    pub sim_time_tu: f64,
    /// Private tier core cost, CU/TU (Table III: 5).
    pub private_core_cost: f64,
    /// Rmax, CU (Table III: 400).
    pub rmax: f64,
    /// Rpenalty, CU (Table III: 15).
    pub rpenalty: f64,
    /// Rscale, CU·TU (Table III: 15 000).
    pub rscale: f64,
    /// Mean jobs per arrival event (Table III: 3).
    pub mean_jobs_per_arrival: f64,
    /// Jobs-per-arrival variance (Table III: 2).
    pub jobs_per_arrival_variance: f64,
    /// Mean job size, units (Table III: 5).
    pub mean_job_size: f64,
    /// Job size variance (Table III: 1).
    pub job_size_variance: f64,
    /// Private tier capacity, cores (§IV-A: 624).
    pub private_capacity_cores: u32,
    /// GB of stage-1 input per job size unit (calibrated; see
    /// `scan_workload::gatk::GB_PER_SIZE_UNIT`).
    pub gb_per_size_unit: f64,
    /// Idle-worker release timeout for private-tier workers, TU.
    pub idle_timeout_tu: f64,
    /// Idle-worker release timeout for public-tier workers, TU. Public
    /// cores bill while hired, so they are released much faster.
    pub public_idle_timeout_tu: f64,
    /// Factor by which the plan optimiser inflates raw core prices to
    /// account for boot/idle overhead of real workers (hired time exceeds
    /// busy time; calibrated against measured utilisation).
    pub overhead_price_factor: f64,
    /// Apply the Eq. 1 delay-cost-vs-hire-cost throttle to *private*
    /// hires as well (the paper's "just enough and just on time"); when
    /// false, free private capacity is always committed to a stalled
    /// queue.
    pub private_hire_throttle: bool,
    /// Headroom factor for standing worker-pool sizing: pools hold
    /// `headroom ×` the forecast busy demand so batch bursts are mostly
    /// absorbed without fresh boots.
    pub pool_headroom: f64,
    /// EWMA smoothing for queue-time estimates.
    pub eqt_alpha: f64,
    /// Long-term allocators re-optimise this often, TU.
    pub replan_period_tu: f64,
    /// Relative noise of the offline profiling trace the knowledge base
    /// is bootstrapped from.
    pub profile_noise: f64,
}

impl Default for FixedParams {
    fn default() -> Self {
        FixedParams {
            sim_time_tu: 10_000.0,
            private_core_cost: 5.0,
            rmax: 400.0,
            rpenalty: 15.0,
            rscale: 15_000.0,
            mean_jobs_per_arrival: 3.0,
            jobs_per_arrival_variance: 2.0,
            mean_job_size: 5.0,
            job_size_variance: 1.0,
            private_capacity_cores: 624,
            gb_per_size_unit: GB_PER_SIZE_UNIT,
            idle_timeout_tu: 2.0,
            public_idle_timeout_tu: 0.5,
            overhead_price_factor: 1.3,
            private_hire_throttle: false,
            pool_headroom: 1.2,
            eqt_alpha: 0.2,
            replan_period_tu: 50.0,
            profile_noise: 0.02,
        }
    }
}

/// Which reward scheme a run uses (Table I's "task completion reward
/// function" axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewardKind {
    /// `R(d,t) = d(Rmax − t·Rpenalty)`.
    TimeBased,
    /// `R(d,t) = d·Rscale/t`.
    ThroughputBased,
    /// §III-A.2 extension: time-based reward that falls to zero past a
    /// deadline (default: the time-based breakeven, Rmax/Rpenalty).
    Deadline,
    /// §III-A.2 extension: time-based reward plateauing below a target
    /// latency (default 18 TU) — "the customer is not willing to pay for
    /// more".
    Plateau,
}

impl RewardKind {
    /// The two Table I kinds, for the paper's sweeps (the deadline and
    /// plateau extensions are exercised by the ablation experiments, not
    /// the published grid).
    pub fn all() -> [RewardKind; 2] {
        [RewardKind::TimeBased, RewardKind::ThroughputBased]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            RewardKind::TimeBased => "time-based",
            RewardKind::ThroughputBased => "throughput-based",
            RewardKind::Deadline => "deadline",
            RewardKind::Plateau => "plateau",
        }
    }
}

/// Table I — the variable simulation parameters (one grid cell).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariableParams {
    /// Resource allocation algorithm.
    pub allocation: AllocationPolicy,
    /// Horizontal scaling algorithm.
    pub scaling: ScalingPolicy,
    /// Mean job inter-arrival interval, TU (2.0 … 3.0).
    pub mean_interval: f64,
    /// Reward scheme.
    pub reward: RewardKind,
    /// Public tier core cost, CU/TU (20, 50, 80, 110).
    pub public_core_cost: f64,
}

impl VariableParams {
    /// The configuration of Fig. 4: best-constant allocation, time-based
    /// reward, public cost 50, scaling as given.
    pub fn fig4(scaling: ScalingPolicy, mean_interval: f64) -> Self {
        VariableParams {
            allocation: AllocationPolicy::BestConstant,
            scaling,
            mean_interval,
            reward: RewardKind::TimeBased,
            public_core_cost: 50.0,
        }
    }
}

/// A full experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanConfig {
    /// Fixed attributes (Table III).
    pub fixed: FixedParams,
    /// Variable attributes (Table I cell).
    pub variable: VariableParams,
    /// Base experiment seed; repetition `k` derives its streams from
    /// `(seed, k)`.
    pub seed: u64,
    /// Allow idle workers to be reshaped to other instance sizes (the
    /// Fig. 5 heterogeneous configuration), paying the 30 s penalty.
    pub allow_reshape: bool,
    /// Override the execution plan for every job (used by the Fig. 5
    /// core-stage sweep); `None` lets the allocation policy decide.
    pub forced_plan: Option<Vec<(u32, u32)>>,
    /// End-to-end latency SLO target in TU. When set, every completed
    /// job with `latency_tu > target` emits an `slo_violation` trace
    /// event and bumps the SLO burn meters; `None` (the default)
    /// disables SLO monitoring and leaves traces unchanged.
    #[serde(default)]
    pub slo_target_tu: Option<f64>,
}

impl ScanConfig {
    /// A config with paper defaults for the given variable cell.
    pub fn new(variable: VariableParams, seed: u64) -> Self {
        ScanConfig {
            fixed: FixedParams::default(),
            variable,
            seed,
            allow_reshape: false,
            forced_plan: None,
            slo_target_tu: None,
        }
    }

    /// The latency at which the paper's time-based reward reaches zero
    /// (`Rmax / Rpenalty` ≈ 26.7 TU at Table III constants) — the
    /// natural SLO target: any job slower than this earns nothing.
    pub fn breakeven_latency_tu(&self) -> f64 {
        self.fixed.rmax / self.fixed.rpenalty
    }

    /// The reward function object for this config.
    pub fn reward_fn(&self) -> RewardFn {
        match self.variable.reward {
            RewardKind::TimeBased => {
                RewardFn::TimeBased { rmax: self.fixed.rmax, rpenalty: self.fixed.rpenalty }
            }
            RewardKind::ThroughputBased => RewardFn::ThroughputBased { rscale: self.fixed.rscale },
            RewardKind::Deadline => RewardFn::Deadline {
                rmax: self.fixed.rmax,
                rpenalty: self.fixed.rpenalty,
                // Default deadline: the time-based breakeven latency.
                deadline: self.fixed.rmax / self.fixed.rpenalty,
            },
            RewardKind::Plateau => RewardFn::Plateau {
                rmax: self.fixed.rmax,
                rpenalty: self.fixed.rpenalty,
                // Just above the latency the profit-optimal time-based
                // plan achieves, so the knee actually binds.
                plateau: 18.0,
            },
        }
    }

    /// The arrival process parameters for this config.
    pub fn arrival_config(&self) -> ArrivalConfig {
        ArrivalConfig {
            mean_interval: self.variable.mean_interval,
            mean_batch: self.fixed.mean_jobs_per_arrival,
            batch_variance: self.fixed.jobs_per_arrival_variance,
            mean_size: self.fixed.mean_job_size,
            size_variance: self.fixed.job_size_variance,
        }
    }

    /// The ground-truth pipeline model at this config's calibration.
    pub fn true_model(&self) -> PipelineModel {
        PipelineModel::new(
            scan_workload::gatk::PAPER_STAGE_FACTORS.to_vec(),
            self.fixed.gb_per_size_unit,
        )
    }
}

/// The Table I grid, enumerable for the full-permutation sweep of §IV-B.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterGrid {
    /// Allocation algorithms to sweep.
    pub allocations: Vec<AllocationPolicy>,
    /// Scaling algorithms to sweep.
    pub scalings: Vec<ScalingPolicy>,
    /// Mean inter-arrival intervals, TU.
    pub intervals: Vec<f64>,
    /// Reward schemes.
    pub rewards: Vec<RewardKind>,
    /// Public tier costs, CU/TU.
    pub public_costs: Vec<f64>,
}

impl ParameterGrid {
    /// Table I verbatim: 4 × 3 × 11 × 2 × 4 = 1056 cells.
    pub fn paper() -> Self {
        ParameterGrid {
            allocations: AllocationPolicy::all().to_vec(),
            scalings: ScalingPolicy::all().to_vec(),
            intervals: (0..=10).map(|i| 2.0 + 0.1 * i as f64).collect(),
            rewards: RewardKind::all().to_vec(),
            public_costs: vec![20.0, 50.0, 80.0, 110.0],
        }
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.allocations.len()
            * self.scalings.len()
            * self.intervals.len()
            * self.rewards.len()
            * self.public_costs.len()
    }

    /// Enumerates every cell in deterministic order.
    pub fn cells(&self) -> Vec<VariableParams> {
        let mut out = Vec::with_capacity(self.n_cells());
        for &allocation in &self.allocations {
            for &scaling in &self.scalings {
                for &mean_interval in &self.intervals {
                    for &reward in &self.rewards {
                        for &public_core_cost in &self.public_costs {
                            out.push(VariableParams {
                                allocation,
                                scaling,
                                mean_interval,
                                reward,
                                public_core_cost,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_defaults() {
        let f = FixedParams::default();
        assert_eq!(f.sim_time_tu, 10_000.0);
        assert_eq!(f.private_core_cost, 5.0);
        assert_eq!(f.rmax, 400.0);
        assert_eq!(f.rpenalty, 15.0);
        assert_eq!(f.rscale, 15_000.0);
        assert_eq!(f.mean_jobs_per_arrival, 3.0);
        assert_eq!(f.jobs_per_arrival_variance, 2.0);
        assert_eq!(f.mean_job_size, 5.0);
        assert_eq!(f.job_size_variance, 1.0);
        assert_eq!(f.private_capacity_cores, 624);
    }

    #[test]
    fn paper_grid_has_1056_cells() {
        let g = ParameterGrid::paper();
        assert_eq!(g.n_cells(), 4 * 3 * 11 * 2 * 4);
        assert_eq!(g.cells().len(), g.n_cells());
        // Intervals are 2.0, 2.1, …, 3.0.
        assert_eq!(g.intervals.len(), 11);
        assert!((g.intervals[0] - 2.0).abs() < 1e-12);
        assert!((g.intervals[10] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reward_fn_selection() {
        let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.5), 1);
        assert_eq!(cfg.reward_fn(), RewardFn::paper_time_based());
        cfg.variable.reward = RewardKind::ThroughputBased;
        assert_eq!(cfg.reward_fn(), RewardFn::paper_throughput_based());
    }

    #[test]
    fn extended_reward_kinds_materialise() {
        let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.5), 1);
        cfg.variable.reward = RewardKind::Deadline;
        match cfg.reward_fn() {
            RewardFn::Deadline { deadline, .. } => {
                assert!((deadline - 400.0 / 15.0).abs() < 1e-9)
            }
            other => panic!("unexpected {other:?}"),
        }
        cfg.variable.reward = RewardKind::Plateau;
        assert_eq!(cfg.reward_fn().name(), "plateau");
        // The paper grid stays two-valued.
        assert_eq!(RewardKind::all().len(), 2);
    }

    #[test]
    fn fig4_cell_matches_caption() {
        // "Reward function: Time-based; Public-tier hire cost: 50;
        //  Resource allocation algorithm: Best constant plan"
        let v = VariableParams::fig4(ScalingPolicy::AlwaysScale, 2.0);
        assert_eq!(v.allocation, AllocationPolicy::BestConstant);
        assert_eq!(v.reward, RewardKind::TimeBased);
        assert_eq!(v.public_core_cost, 50.0);
    }

    #[test]
    fn arrival_config_reflects_interval() {
        let cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.7), 1);
        let a = cfg.arrival_config();
        assert!((a.mean_interval - 2.7).abs() < 1e-12);
        assert_eq!(a.mean_batch, 3.0);
    }
}
