//! # scan-sched — the SCAN Scheduler
//!
//! The paper's primary contribution (§III-A.2): a reward-driven scheduler
//! for batch pipelines on an elastic cloud. "For each work item reaching
//! the front of a task queue … the SCAN must decide: should a worker be
//! hired from the elastic cloud to run it immediately, or should it be
//! delayed until an existing worker becomes available?"
//!
//! * [`queue`] — per-class FIFO task queues with wait statistics.
//! * [`estimate`] — the Eq. 2 estimators: per-stage execution time `EET`
//!   (linear in records, from knowledge-base models), expected queue time
//!   `EQT` (exponentially-weighted observation average) and the combined
//!   `ETT(j)`.
//! * [`delay_cost`](mod@delay_cost) — Eq. 1: the reward lost by delaying everything in a
//!   queue by `delay` time units.
//! * [`aggregate`] — incremental Eq. 1: per-class delay-cost aggregates
//!   maintained on enqueue/dequeue, so a scaling decision prices the
//!   queue from a few cached numbers instead of a full walk (the naive
//!   [`mod@delay_cost`] walk stays as the debug oracle).
//! * [`plan`] — execution plans (per-stage shards × threads) and the plan
//!   optimiser. For the time-based reward, profit is separable per stage
//!   and the optimum is exact; for the throughput-based reward the solver
//!   iterates a linearisation of the latency price until fixed point.
//! * [`scaling`] — Table I's horizontal-scaling policies: always-scale,
//!   never-scale and the paper's predictive scaling (hire public cores iff
//!   the Eq. 1 delay cost exceeds the hire cost).
//! * [`alloc`] — Table I's resource-allocation policies: greedy,
//!   long-term, long-term adaptive and best-constant.
//! * [`learned`] — the paper's future-work extension: an ε-greedy bandit
//!   over candidate plans (§VI "we plan to adopt learning algorithms to
//!   guide the Scheduler").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod alloc;
pub mod delay_cost;
pub mod estimate;
pub mod learned;
pub mod plan;
pub mod queue;
pub mod scaling;

pub use aggregate::{Eq1Pricer, QueueAggregates};
pub use alloc::{AllocationContext, AllocationPolicy, Allocator};
pub use delay_cost::{delay_cost, QueuedJobView};
pub use estimate::{EttEstimator, QueueTimeTracker};
pub use plan::{best_plan, ExecutionPlan, PlanEconomics, PlanObjective};
pub use queue::{QueueSet, TaskClass, TaskQueue};
pub use scaling::{ScalingContext, ScalingDecision, ScalingPolicy};
