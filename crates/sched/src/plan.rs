//! Execution plans and the plan optimiser.
//!
//! A plan fixes, per pipeline stage, how many shards the Data Broker cuts
//! the stage input into and how many threads each shard task uses ("the
//! degree of multi-threading must be chosen when the stage starts … but
//! can differ from pipeline stage to stage", §IV-1). The allocator
//! searches this space for the profit-maximising plan:
//!
//! * Under the **time-based** reward, profit is *separable per stage*
//!   (`R = d·Rmax − d·Rpenalty·Σ lat_i − price·Σ work_i`), so optimising
//!   each stage independently is exact.
//! * Under the **throughput-based** reward (`d·Rscale / Σ lat_i`), the
//!   solver iterates: linearise the reward around the current total
//!   latency (marginal value of a saved TU = `d·Rscale / T²`), solve the
//!   separable problem at that latency price, recompute `T`, repeat to a
//!   fixed point (converges in a handful of iterations because the
//!   marginal price is monotone in `T`).

use scan_cloud::instance::INSTANCE_SIZES;
use scan_workload::gatk::{stage_shardable, PipelineModel};
use scan_workload::reward::RewardFn;
use serde::{Deserialize, Serialize};

/// Shard counts the optimiser considers for shardable stages.
pub const SHARD_OPTIONS: [u32; 8] = [1, 2, 3, 4, 6, 8, 12, 16];

/// A per-stage `(shards, threads)` execution plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Plan entries, index 0 = stage 1.
    pub stages: Vec<(u32, u32)>,
}

impl ExecutionPlan {
    /// The trivial serial plan: one shard, one thread everywhere.
    pub fn serial(n_stages: usize) -> Self {
        ExecutionPlan { stages: vec![(1, 1); n_stages] }
    }

    /// Builds a plan from entries.
    ///
    /// # Panics
    /// Panics if a thread count is not an instance size, a shard count is
    /// zero, or the last stage is sharded.
    pub fn new(stages: Vec<(u32, u32)>) -> Self {
        assert!(!stages.is_empty());
        for (i, &(s, t)) in stages.iter().enumerate() {
            assert!(s >= 1, "stage {} has zero shards", i + 1);
            assert!(
                INSTANCE_SIZES.contains(&t),
                "stage {} thread count {} is not an instance size",
                i + 1,
                t
            );
            if !stage_shardable(i) && i == stages.len() - 1 {
                assert!(s == 1, "the gather stage cannot be sharded");
            }
        }
        ExecutionPlan { stages }
    }

    /// Number of stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Entry for a stage.
    pub fn stage(&self, i: usize) -> (u32, u32) {
        self.stages[i]
    }

    /// Σ shards·threads — the paper's "total core-stages per pipeline
    /// run" (Fig. 5's x-axis).
    pub fn total_core_stages(&self) -> u32 {
        self.stages.iter().map(|&(s, t)| s * t).sum()
    }

    /// No-queue pipeline latency under this plan.
    pub fn latency(&self, model: &PipelineModel, size_units: f64) -> f64 {
        model.pipeline_latency(size_units, &self.stages)
    }

    /// Core·TU consumed under this plan.
    pub fn core_tu(&self, model: &PipelineModel, size_units: f64) -> f64 {
        model.pipeline_core_tu(size_units, &self.stages)
    }
}

/// What the optimiser optimises against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanObjective {
    /// The reward scheme in force.
    pub reward: RewardFn,
    /// Expected price of a core·TU (private, public, or a load-weighted
    /// blend — the allocator decides).
    pub price_per_core_tu: f64,
    /// Expected non-execution latency added to the pipeline (queueing,
    /// boot waits); charged to the reward but not to the plan's work.
    pub overhead_tu: f64,
}

/// The economics of one plan at one job size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanEconomics {
    /// Execution latency, TU (excluding overhead).
    pub exec_latency: f64,
    /// Total latency including overhead.
    pub total_latency: f64,
    /// Core·TU of work.
    pub work_core_tu: f64,
    /// Infrastructure cost at the objective's price.
    pub cost: f64,
    /// Reward at the total latency.
    pub reward: f64,
    /// Reward − cost.
    pub profit: f64,
}

/// Evaluates a plan against an objective.
pub fn evaluate_plan(
    model: &PipelineModel,
    size_units: f64,
    plan: &ExecutionPlan,
    objective: &PlanObjective,
) -> PlanEconomics {
    let exec_latency = plan.latency(model, size_units);
    let total_latency = exec_latency + objective.overhead_tu;
    let work_core_tu = plan.core_tu(model, size_units);
    let cost = work_core_tu * objective.price_per_core_tu;
    let reward = objective.reward.reward(size_units, total_latency);
    PlanEconomics { exec_latency, total_latency, work_core_tu, cost, reward, profit: reward - cost }
}

/// Optimises one stage against a linear latency price: minimise
/// `latency_price · lat(s, t) + core_price · work(s, t)`.
fn best_stage_entry(
    model: &PipelineModel,
    stage: usize,
    size_units: f64,
    latency_price: f64,
    core_price: f64,
) -> (u32, u32) {
    let shard_options: &[u32] = if stage_shardable(stage) { &SHARD_OPTIONS } else { &[1] };
    let mut best = (1u32, 1u32);
    let mut best_cost = f64::INFINITY;
    for &s in shard_options {
        for &t in &INSTANCE_SIZES {
            let lat = model.stage_latency(stage, size_units, s, t);
            let work = model.stage_core_tu(stage, size_units, s, t);
            let cost = latency_price * lat + core_price * work;
            // Deterministic tie-break toward fewer resources.
            if cost < best_cost - 1e-12 {
                best_cost = cost;
                best = (s, t);
            }
        }
    }
    best
}

/// Finds the profit-maximising plan for a job of `size_units`.
///
/// Works for every reward shape via iterated linearisation: the reward's
/// marginal latency price ([`RewardFn::latency_price`]) at the current
/// operating point drives a separable per-stage solve; constant-price
/// schemes (time-based) converge in one step, curved or kinked schemes
/// (throughput, deadline, plateau) in a handful. The best plan *seen*
/// across iterations (by realised profit) is returned, which also makes
/// kinked schemes that oscillate around their knee safe.
pub fn best_plan(
    model: &PipelineModel,
    size_units: f64,
    objective: &PlanObjective,
) -> ExecutionPlan {
    let n = model.n_stages();
    let mut plan = ExecutionPlan::serial(n);
    let mut best = (evaluate_plan(model, size_units, &plan, objective).profit, plan.clone());
    let mut last_latency = f64::INFINITY;
    for _ in 0..12 {
        let total = plan.latency(model, size_units) + objective.overhead_tu;
        if (total - last_latency).abs() < 1e-9 {
            break;
        }
        last_latency = total;
        let latency_price = objective.reward.latency_price(size_units, total.max(1e-3));
        let stages = (0..n)
            .map(|i| {
                best_stage_entry(model, i, size_units, latency_price, objective.price_per_core_tu)
            })
            .collect();
        plan = ExecutionPlan::new(stages);
        let profit = evaluate_plan(model, size_units, &plan, objective).profit;
        if profit > best.0 {
            best = (profit, plan.clone());
        }
    }
    best.1
}

/// Grows an efficient frontier of plans from the serial plan by greedy
/// marginal upgrades: at each step, the single change (one more shard on a
/// shardable stage, or the next instance shape) with the best latency
/// saved per added core-stage. Used by the Fig. 5 ladder and useful for
/// any "how much parallelism is worth it" exploration.
pub fn plan_frontier(
    model: &PipelineModel,
    size_units: f64,
    max_core_stages: u32,
) -> Vec<ExecutionPlan> {
    let n = model.n_stages();
    let mut plan = ExecutionPlan::serial(n);
    let mut out = vec![plan.clone()];
    loop {
        let cur_lat = plan.latency(model, size_units);
        let cur_cs = plan.total_core_stages();
        if cur_cs >= max_core_stages {
            break;
        }
        let mut best: Option<(f64, ExecutionPlan)> = None;
        for i in 0..n {
            let (s, t) = plan.stage(i);
            let mut candidates = Vec::new();
            if stage_shardable(i) && s < 16 {
                candidates.push((s + 1, t));
            }
            if let Some(&next_t) = INSTANCE_SIZES.iter().find(|&&x| x > t) {
                candidates.push((s, next_t));
            }
            for (ns, nt) in candidates {
                let mut stages = plan.stages.clone();
                stages[i] = (ns, nt);
                let cand = ExecutionPlan::new(stages);
                let d_cs = cand.total_core_stages().saturating_sub(cur_cs);
                if d_cs == 0 {
                    continue;
                }
                let saved = cur_lat - cand.latency(model, size_units);
                if saved <= 1e-9 {
                    continue;
                }
                let score = saved / d_cs as f64;
                match &best {
                    Some((b, _)) if *b >= score => {}
                    _ => best = Some((score, cand)),
                }
            }
        }
        match best {
            Some((_, next)) => {
                plan = next;
                out.push(plan.clone());
            }
            None => break,
        }
    }
    out
}

/// A small, diverse candidate set spanning the conservative-to-aggressive
/// spectrum — used by the best-constant search and the learned policy.
pub fn candidate_plans(model: &PipelineModel, size_units: f64) -> Vec<ExecutionPlan> {
    let n = model.n_stages();
    let mut plans = vec![ExecutionPlan::serial(n)];
    // Optimal plans at a ladder of latency prices (cheap to expensive
    // latency), at private and public core prices.
    for &core_price in &[5.0, 50.0] {
        for &latency_price in &[5.0, 20.0, 75.0, 200.0, 600.0] {
            let stages = (0..n)
                .map(|i| best_stage_entry(model, i, size_units, latency_price, core_price))
                .collect();
            let p = ExecutionPlan::new(stages);
            if !plans.contains(&p) {
                plans.push(p);
            }
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PipelineModel {
        PipelineModel::paper()
    }

    fn time_obj(price: f64) -> PlanObjective {
        PlanObjective {
            reward: RewardFn::paper_time_based(),
            price_per_core_tu: price,
            overhead_tu: 0.0,
        }
    }

    #[test]
    fn serial_plan_shape() {
        let p = ExecutionPlan::serial(7);
        assert_eq!(p.total_core_stages(), 7);
        assert_eq!(p.n_stages(), 7);
        assert!((p.latency(&model(), 5.0) - model().serial_latency(5.0)).abs() < 1e-9);
    }

    #[test]
    fn plan_validation() {
        assert!(std::panic::catch_unwind(|| {
            ExecutionPlan::new(vec![(1, 3); 7]) // 3 threads is not a shape
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            ExecutionPlan::new(vec![(0, 1); 7]) // zero shards
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            let mut v = vec![(1, 1); 7];
            v[6] = (4, 1); // sharded gather
            ExecutionPlan::new(v)
        })
        .is_err());
    }

    #[test]
    fn best_plan_beats_serial_under_time_reward() {
        let m = model();
        let obj = time_obj(5.0);
        let best = best_plan(&m, 5.0, &obj);
        let serial = ExecutionPlan::serial(7);
        let eb = evaluate_plan(&m, 5.0, &best, &obj);
        let es = evaluate_plan(&m, 5.0, &serial, &obj);
        assert!(
            eb.profit > es.profit,
            "optimised profit {} must beat serial {}",
            eb.profit,
            es.profit
        );
        // At private prices the optimum is solidly profitable.
        assert!(eb.profit > 0.0, "profit {}", eb.profit);
    }

    #[test]
    fn optimum_shards_stage2_threads_stage5() {
        // The qualitative structure the paper predicts: stage 2
        // (a-dominated, serial) gets sharded; stage 5 (b-dominated,
        // parallelisable) gets threaded.
        let m = model();
        let best = best_plan(&m, 5.0, &time_obj(5.0));
        let (s2_shards, _) = best.stage(1);
        let (_, s5_threads) = best.stage(4);
        assert!(s2_shards >= 4, "stage 2 should shard aggressively, got {s2_shards}");
        assert!(s5_threads >= 4, "stage 5 should thread aggressively, got {s5_threads}");
        // Stage 7 (gather) stays serial by construction.
        assert_eq!(best.stage(6), (1, 1));
    }

    #[test]
    fn expensive_cores_shrink_the_plan() {
        let m = model();
        let cheap = best_plan(&m, 5.0, &time_obj(5.0));
        let pricey = best_plan(&m, 5.0, &time_obj(110.0));
        assert!(
            pricey.total_core_stages() <= cheap.total_core_stages(),
            "higher core price must not buy more cores ({} vs {})",
            pricey.total_core_stages(),
            cheap.total_core_stages()
        );
        // And the latency ordering flips.
        assert!(pricey.latency(&m, 5.0) >= cheap.latency(&m, 5.0));
    }

    #[test]
    fn time_based_optimum_is_exhaustively_optimal_per_stage() {
        // Cross-check the separable argument by brute force on stage 4.
        let m = model();
        let obj = time_obj(5.0);
        let best = best_plan(&m, 5.0, &obj);
        let (bs, bt) = best.stage(3);
        let lat_price = 5.0 * 15.0;
        let objective_value = |s: u32, t: u32| {
            lat_price * m.stage_latency(3, 5.0, s, t) + 5.0 * m.stage_core_tu(3, 5.0, s, t)
        };
        let best_val = objective_value(bs, bt);
        for &s in &SHARD_OPTIONS {
            for &t in &INSTANCE_SIZES {
                assert!(
                    best_val <= objective_value(s, t) + 1e-9,
                    "({bs},{bt}) beaten by ({s},{t})"
                );
            }
        }
    }

    #[test]
    fn throughput_solver_converges_and_beats_serial() {
        let m = model();
        let obj = PlanObjective {
            reward: RewardFn::paper_throughput_based(),
            price_per_core_tu: 5.0,
            overhead_tu: 2.0,
        };
        let best = best_plan(&m, 5.0, &obj);
        let eb = evaluate_plan(&m, 5.0, &best, &obj);
        let es = evaluate_plan(&m, 5.0, &ExecutionPlan::serial(7), &obj);
        assert!(eb.profit >= es.profit, "{} vs {}", eb.profit, es.profit);
        assert!(eb.profit > 0.0);
    }

    #[test]
    fn overhead_charges_reward_not_cost() {
        let m = model();
        let p = ExecutionPlan::serial(7);
        let no = evaluate_plan(&m, 5.0, &p, &time_obj(5.0));
        let with = evaluate_plan(&m, 5.0, &p, &PlanObjective { overhead_tu: 4.0, ..time_obj(5.0) });
        assert_eq!(no.cost, with.cost);
        assert!(with.reward < no.reward);
        assert!((with.total_latency - no.total_latency - 4.0).abs() < 1e-9);
    }

    #[test]
    fn frontier_starts_serial_and_grows_monotonically() {
        let m = model();
        let frontier = plan_frontier(&m, 5.0, 64);
        assert_eq!(frontier[0], ExecutionPlan::serial(7));
        assert!(frontier.len() > 10, "frontier should have many steps");
        for pair in frontier.windows(2) {
            assert!(
                pair[1].total_core_stages() > pair[0].total_core_stages(),
                "core-stages must grow along the frontier"
            );
            assert!(
                pair[1].latency(&m, 5.0) < pair[0].latency(&m, 5.0) + 1e-12,
                "latency must not increase along the frontier"
            );
        }
        // It covers the paper's Fig. 5 x-range densely.
        let sizes: Vec<u32> = frontier.iter().map(ExecutionPlan::total_core_stages).collect();
        for want in [7u32, 10, 15, 20] {
            assert!(
                sizes.iter().any(|&s| s.abs_diff(want) <= 1),
                "frontier misses the {want} region: {sizes:?}"
            );
        }
    }

    #[test]
    fn deadline_reward_plans_meet_the_deadline() {
        let m = model();
        // A deadline just tighter than the serial latency forces a
        // parallel plan; a loose one permits a lean plan.
        let serial_lat = m.serial_latency(5.0);
        let tight = PlanObjective {
            reward: RewardFn::Deadline { rmax: 400.0, rpenalty: 5.0, deadline: serial_lat * 0.6 },
            price_per_core_tu: 5.0,
            overhead_tu: 0.0,
        };
        let plan = best_plan(&m, 5.0, &tight);
        assert!(
            plan.latency(&m, 5.0) <= serial_lat * 0.6,
            "plan must land inside the deadline ({} vs {})",
            plan.latency(&m, 5.0),
            serial_lat * 0.6
        );
    }

    #[test]
    fn plateau_reward_stops_buying_speed_at_the_plateau() {
        let m = model();
        let obj = PlanObjective {
            reward: RewardFn::Plateau { rmax: 400.0, rpenalty: 15.0, plateau: 20.0 },
            price_per_core_tu: 5.0,
            overhead_tu: 0.0,
        };
        let plan = best_plan(&m, 5.0, &obj);
        let lat = plan.latency(&m, 5.0);
        // No point being much faster than the plateau; the optimiser must
        // not buy latency below ~the knee.
        let unconstrained = best_plan(&m, 5.0, &time_obj(5.0));
        assert!(
            plan.total_core_stages() <= unconstrained.total_core_stages(),
            "plateau plans must be no bigger than time-based plans"
        );
        // The two-price linearisation lands near the knee; the discrete
        // plan ladder may overshoot one step past it, but must not chase
        // latency far below the plateau the way the time-based plan does.
        let unconstrained_lat = unconstrained.latency(&m, 5.0);
        assert!(
            lat >= unconstrained_lat - 1e-9,
            "plateau plan ({lat}) must not be faster than the unconstrained one ({unconstrained_lat})"
        );
    }

    #[test]
    fn candidates_are_diverse_and_valid() {
        let m = model();
        let cands = candidate_plans(&m, 5.0);
        assert!(cands.len() >= 4, "want a spread of plans, got {}", cands.len());
        assert!(cands.contains(&ExecutionPlan::serial(7)));
        // All distinct.
        for i in 0..cands.len() {
            for j in (i + 1)..cands.len() {
                assert_ne!(cands[i], cands[j]);
            }
        }
        // Spanning a range of core-stage totals.
        let min = cands.iter().map(ExecutionPlan::total_core_stages).min().unwrap();
        let max = cands.iter().map(ExecutionPlan::total_core_stages).max().unwrap();
        assert!(max > min + 8, "candidates should span the spectrum ({min}..{max})");
    }
}
