//! The Eq. 2 estimators.
//!
//! `ETT(j) = elapsed_j + Σ_{i = S_j} (EQT_i + EET_i(j))`
//!
//! * `EET_i(j)` — estimated execution time of stage `i` for job `j`: "a
//!   linear function of the number of job input records derived from
//!   profiling data". We evaluate the job's planned `(shards, threads)`
//!   against the (knowledge-base-learned) stage model.
//! * `EQT_i` — "the time we expect a general job to spend in the queue for
//!   stage `i`": an exponentially-weighted average of observed waits,
//!   which tracks load swings without storing history.

use scan_sim::SimTime;
use scan_workload::gatk::PipelineModel;
use scan_workload::job::Job;
use serde::{Deserialize, Serialize};

/// Exponentially-weighted queue-wait tracker, one slot per stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueTimeTracker {
    ewma: Vec<f64>,
    alpha: f64,
    observations: Vec<u64>,
    /// Bumped whenever the EWMA state changes, so cached future-stage
    /// estimates (the incremental Eq. 1 aggregates) know when to
    /// revalidate. Starts at 1: revision 0 is the "never computed"
    /// sentinel on the cache side.
    #[serde(default = "initial_revision")]
    revision: u64,
}

fn initial_revision() -> u64 {
    1
}

impl QueueTimeTracker {
    /// Creates a tracker for `n_stages` stages with smoothing factor
    /// `alpha` (weight of the newest observation).
    pub fn new(n_stages: usize, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha) && alpha > 0.0);
        QueueTimeTracker {
            ewma: vec![0.0; n_stages],
            alpha,
            observations: vec![0; n_stages],
            revision: initial_revision(),
        }
    }

    /// Records an observed queue wait for a stage.
    pub fn observe(&mut self, stage: usize, wait_tu: f64) {
        assert!(wait_tu >= 0.0);
        let slot = &mut self.ewma[stage];
        if self.observations[stage] == 0 {
            *slot = wait_tu;
        } else {
            *slot = self.alpha * wait_tu + (1.0 - self.alpha) * *slot;
        }
        self.observations[stage] += 1;
        self.revision += 1;
    }

    /// Current `EQT_i` estimate (0 until first observation).
    pub fn eqt(&self, stage: usize) -> f64 {
        self.ewma[stage]
    }

    /// Sum of `EQT_i` over stages `from..`.
    pub fn eqt_tail(&self, from: usize) -> f64 {
        self.ewma[from..].iter().sum()
    }

    /// Observations recorded for a stage.
    pub fn observations(&self, stage: usize) -> u64 {
        self.observations[stage]
    }

    /// Current revision: changes iff a future-stage estimate computed
    /// from this tracker's EWMAs could have changed.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    fn bump_revision(&mut self) {
        self.revision += 1;
    }
}

/// The combined ETT estimator: stage models + queue tracker.
#[derive(Debug, Clone)]
pub struct EttEstimator {
    model: PipelineModel,
    queue_times: QueueTimeTracker,
}

impl EttEstimator {
    /// Builds an estimator over a (possibly learned) pipeline model.
    pub fn new(model: PipelineModel, alpha: f64) -> Self {
        let n = model.n_stages();
        EttEstimator { model, queue_times: QueueTimeTracker::new(n, alpha) }
    }

    /// The underlying model.
    pub fn model(&self) -> &PipelineModel {
        &self.model
    }

    /// Replaces the stage models (long-term-adaptive refreshes). Bumps
    /// the revision: cached future-stage estimates derived from the old
    /// models are stale.
    pub fn set_model(&mut self, model: PipelineModel) {
        assert_eq!(model.n_stages(), self.model.n_stages());
        self.model = model;
        self.queue_times.bump_revision();
    }

    /// Mutable access to the queue tracker (the dispatcher feeds it).
    pub fn queue_times_mut(&mut self) -> &mut QueueTimeTracker {
        &mut self.queue_times
    }

    /// Read access to the queue tracker.
    pub fn queue_times(&self) -> &QueueTimeTracker {
        &self.queue_times
    }

    /// Revision of this estimator's inputs: [`EttEstimator::remaining`]
    /// for a fixed `(job, stage, plan)` returns bit-identical values
    /// between two calls at the same revision, so Eq. 1 caches keyed on
    /// it never go stale silently.
    pub fn revision(&self) -> u64 {
        self.queue_times.revision()
    }

    /// `EET_i(j)`: execution-time estimate of stage `i` under the job's
    /// plan entry `(shards, threads)`.
    pub fn eet(&self, stage: usize, size_units: f64, shards: u32, threads: u32) -> f64 {
        self.model.stage_latency(stage, size_units, shards, threads)
    }

    /// `Σ_{i ≥ current_stage} (EQT_i + EET_i)` — the shared future-stage
    /// loop of [`EttEstimator::ett`] and [`EttEstimator::remaining`].
    ///
    /// Fused on purpose: the Eq. 1 queue-view fill calls this once per
    /// queued job, so the per-stage arithmetic is inlined here with the
    /// `units_to_gb` conversion hoisted out of the loop (it does not
    /// depend on the stage). Bit-exact with the naive per-stage
    /// `eqt(i) + eet(i, …)` sum: identical operations in identical order,
    /// folded from 0 like `Iterator::sum` — `prop_future_matches_naive_sum`
    /// pins this.
    fn future_from(&self, current_stage: usize, size_units: f64, plan: &[(u32, u32)]) -> f64 {
        assert!(plan.len() >= self.model.n_stages());
        let g = self.model.units_to_gb(size_units);
        let mut future = 0.0;
        for ((factors, &(shards, threads)), &eqt) in self.model.stages[current_stage..]
            .iter()
            .zip(&plan[current_stage..self.model.n_stages()])
            .zip(&self.queue_times.ewma[current_stage..])
        {
            debug_assert!(shards >= 1);
            let d = g / shards as f64;
            future += eqt + factors.threaded_time(threads, d);
        }
        future
    }

    /// Eq. 2: estimated total latency of `job`, which has completed stages
    /// `0..current_stage` and now sits at `current_stage`, under `plan`
    /// (per-stage `(shards, threads)`).
    pub fn ett(&self, job: &Job, current_stage: usize, plan: &[(u32, u32)], now: SimTime) -> f64 {
        assert_eq!(plan.len(), self.model.n_stages());
        let elapsed = job.latency(now);
        elapsed + self.future_from(current_stage, job.size_units, plan)
    }

    /// Estimated *remaining* time (ETT minus elapsed).
    pub fn remaining(&self, job: &Job, current_stage: usize, plan: &[(u32, u32)]) -> f64 {
        self.future_from(current_stage, job.size_units, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_workload::job::JobId;

    #[test]
    fn ewma_tracks_observations() {
        let mut t = QueueTimeTracker::new(3, 0.5);
        assert_eq!(t.eqt(0), 0.0);
        t.observe(0, 4.0);
        assert_eq!(t.eqt(0), 4.0, "first observation seeds the average");
        t.observe(0, 8.0);
        assert_eq!(t.eqt(0), 6.0);
        t.observe(0, 6.0);
        assert_eq!(t.eqt(0), 6.0);
        assert_eq!(t.observations(0), 3);
        assert_eq!(t.eqt(1), 0.0);
    }

    #[test]
    fn eqt_tail_sums_future_stages() {
        let mut t = QueueTimeTracker::new(3, 1.0);
        t.observe(0, 1.0);
        t.observe(1, 2.0);
        t.observe(2, 4.0);
        assert_eq!(t.eqt_tail(0), 7.0);
        assert_eq!(t.eqt_tail(1), 6.0);
        assert_eq!(t.eqt_tail(2), 4.0);
    }

    #[test]
    fn ett_is_elapsed_plus_future() {
        let model = PipelineModel::paper();
        let mut est = EttEstimator::new(model.clone(), 0.3);
        // Seed EQTs: 1 TU for every stage.
        for i in 0..7 {
            est.queue_times_mut().observe(i, 1.0);
        }
        let job = Job::new(JobId(1), 5.0, SimTime::new(10.0));
        let plan = [(1u32, 1u32); 7];
        let now = SimTime::new(15.0); // elapsed = 5
        let ett = est.ett(&job, 0, &plan, now);
        let expect = 5.0 + 7.0 + model.serial_latency(5.0);
        assert!((ett - expect).abs() < 1e-9, "{ett} vs {expect}");
        // From stage 3 only stages 3..7 contribute.
        let ett3 = est.ett(&job, 3, &plan, now);
        let future: f64 = (3..7).map(|i| model.stage_latency(i, 5.0, 1, 1) + 1.0).sum();
        assert!((ett3 - (5.0 + future)).abs() < 1e-9);
        // remaining == ett − elapsed.
        assert!((est.remaining(&job, 3, &plan) - (ett3 - 5.0)).abs() < 1e-9);
    }

    #[test]
    fn plan_affects_eet() {
        let est = EttEstimator::new(PipelineModel::paper(), 0.3);
        // Threading stage 5 (c=0.91) cuts its EET.
        let slow = est.eet(4, 5.0, 1, 1);
        let fast = est.eet(4, 5.0, 1, 16);
        assert!(fast < slow / 4.0);
    }

    #[test]
    #[should_panic]
    fn wrong_plan_length_panics() {
        let est = EttEstimator::new(PipelineModel::paper(), 0.3);
        let job = Job::new(JobId(1), 5.0, SimTime::ZERO);
        est.ett(&job, 0, &[(1, 1); 3], SimTime::ZERO);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The fused future-stage loop must be *bit-exact* with the
            /// naive per-stage `eqt(i) + eet(i, …)` sum it replaced — the
            /// golden fixed-seed trace hash depends on every ETT bit.
            #[test]
            fn prop_future_matches_naive_sum(
                size in 0.5f64..20.0,
                current in 0usize..7,
                waits in proptest::collection::vec(0.0f64..30.0, 7..8),
                plan_raw in proptest::collection::vec((1u32..8, 1u32..16), 7..8),
            ) {
                let mut est = EttEstimator::new(PipelineModel::paper(), 0.3);
                for (i, &w) in waits.iter().enumerate() {
                    est.queue_times_mut().observe(i, w);
                }
                let plan: Vec<(u32, u32)> = plan_raw.clone();
                let job = Job::new(JobId(1), size, SimTime::ZERO);
                let naive: f64 = (current..7)
                    .map(|i| {
                        let (s, t) = plan[i];
                        est.queue_times().eqt(i) + est.eet(i, size, s, t)
                    })
                    .sum();
                let fused = est.remaining(&job, current, &plan);
                prop_assert_eq!(fused.to_bits(), naive.to_bits());
            }
        }
    }
}
