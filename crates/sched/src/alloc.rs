//! Resource-allocation policies (Table I): how a job's execution plan —
//! per-stage shards and threads — is chosen.
//!
//! * **Best-constant** — one plan, chosen offline for the *mean* job under
//!   steady-state economics, applied to every job ("when every run uses
//!   the same execution plan", §IV-B).
//! * **Greedy** — re-optimises per job against the *instantaneous* state:
//!   today's marginal core price (private if free, else public) and
//!   today's queue overhead. Myopic by construction.
//! * **Long-term** — re-optimises periodically against a steady-state
//!   forecast: the configured arrival rate and a capacity-aware blended
//!   core price (if forecast demand exceeds private capacity, the excess
//!   is priced at public rates).
//! * **Long-term adaptive** — the same solver, but fed *online* estimates:
//!   an observed arrival rate and knowledge-base-refreshed stage models
//!   (the platform supplies both through [`AllocationContext`]).

use crate::plan::{best_plan, candidate_plans, evaluate_plan, ExecutionPlan, PlanObjective};
use scan_sim::SimTime;
use scan_workload::gatk::PipelineModel;
use scan_workload::reward::RewardFn;
use serde::{Deserialize, Serialize};

/// Table I's resource-allocation algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Per-job myopic optimisation.
    Greedy,
    /// Periodic optimisation against the configured forecast.
    LongTerm,
    /// Periodic optimisation against online estimates.
    LongTermAdaptive,
    /// One offline-chosen plan for every job.
    BestConstant,
    /// §VI's future-work extension: an ε-greedy bandit over candidate
    /// plans, learning from realised profits. Not part of Table I's grid;
    /// the platform drives it through
    /// [`crate::learned::EpsilonGreedyPlanner`].
    Learned,
}

impl AllocationPolicy {
    /// Display name matching Table I.
    pub fn name(&self) -> &'static str {
        match self {
            AllocationPolicy::Greedy => "greedy",
            AllocationPolicy::LongTerm => "long-term",
            AllocationPolicy::LongTermAdaptive => "long-term-adaptive",
            AllocationPolicy::BestConstant => "best-constant",
            AllocationPolicy::Learned => "learned",
        }
    }

    /// All four, for sweeps.
    pub fn all() -> [AllocationPolicy; 4] {
        [
            AllocationPolicy::Greedy,
            AllocationPolicy::LongTerm,
            AllocationPolicy::LongTermAdaptive,
            AllocationPolicy::BestConstant,
        ]
    }
}

/// The world state an allocation decision sees. The platform fills this
/// from live simulation state; which fields a policy *uses* depends on the
/// policy (greedy reads the instantaneous fields, long-term the forecast
/// fields, adaptive the online-estimate fields).
#[derive(Debug, Clone)]
pub struct AllocationContext<'a> {
    /// Stage models to plan against. For long-term-adaptive the platform
    /// passes knowledge-base-refreshed models; otherwise the profiled ones.
    pub model: &'a PipelineModel,
    /// Reward scheme in force.
    pub reward: RewardFn,
    /// Private-tier price, CU per core·TU.
    pub private_price: f64,
    /// Public-tier price, CU per core·TU.
    pub public_price: f64,
    /// Private-tier capacity, cores.
    pub private_capacity: u32,
    /// True if the private tier has free cores *right now* (greedy).
    pub private_free_now: bool,
    /// Current queue overhead Σ EQT_i, TU (greedy).
    pub current_overhead_tu: f64,
    /// Forecast/observed job arrival rate, jobs per TU.
    pub arrival_rate: f64,
    /// Forecast/observed mean job size, units.
    pub mean_job_size: f64,
    /// Long-run queue overhead estimate, TU.
    pub steady_overhead_tu: f64,
}

impl AllocationContext<'_> {
    /// Capacity-aware blended core price for a plan consuming
    /// `work_core_tu` per job at the forecast arrival rate: demand within
    /// private capacity is billed private, the excess public.
    pub fn blended_price(&self, work_core_tu_per_job: f64) -> f64 {
        let demand = self.arrival_rate * work_core_tu_per_job; // cores
        let cap = self.private_capacity as f64;
        if demand <= 0.0 {
            return self.private_price;
        }
        if demand <= cap {
            self.private_price
        } else {
            let private_share = cap / demand;
            self.private_price * private_share + self.public_price * (1.0 - private_share)
        }
    }
}

/// A stateful allocator: policy + cached plan.
#[derive(Debug, Clone)]
pub struct Allocator {
    policy: AllocationPolicy,
    /// Re-optimisation period for the long-term policies, TU.
    recompute_every: f64,
    cached: Option<CachedPlan>,
}

#[derive(Debug, Clone)]
struct CachedPlan {
    plan: ExecutionPlan,
    computed_at: SimTime,
}

impl Allocator {
    /// Creates an allocator; long-term policies re-optimise every
    /// `recompute_every` TU (the paper's scheduler "supports a variety of
    /// scaling parameters that the cloud manager can adjust at runtime").
    pub fn new(policy: AllocationPolicy, recompute_every: f64) -> Self {
        assert!(recompute_every > 0.0);
        Allocator { policy, recompute_every, cached: None }
    }

    /// The policy.
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// Chooses the plan for a job of `size_units` submitted at `now`.
    pub fn plan_for(
        &mut self,
        size_units: f64,
        now: SimTime,
        ctx: &AllocationContext<'_>,
    ) -> ExecutionPlan {
        match self.policy {
            AllocationPolicy::Greedy => {
                let price = if ctx.private_free_now { ctx.private_price } else { ctx.public_price };
                let objective = PlanObjective {
                    reward: ctx.reward,
                    price_per_core_tu: price,
                    overhead_tu: ctx.current_overhead_tu,
                };
                best_plan(ctx.model, size_units, &objective)
            }
            AllocationPolicy::LongTerm | AllocationPolicy::LongTermAdaptive => {
                let stale = match &self.cached {
                    None => true,
                    Some(c) => (now - c.computed_at).as_tu() >= self.recompute_every,
                };
                if stale {
                    let plan = self.steady_state_plan(ctx);
                    self.cached = Some(CachedPlan { plan, computed_at: now });
                }
                self.cached.as_ref().expect("just populated").plan.clone()
            }
            // The bandit lives at the platform level (it needs an RNG and
            // per-job profit feedback); if asked directly, fall back to
            // the best-constant baseline.
            AllocationPolicy::BestConstant | AllocationPolicy::Learned => {
                if self.cached.is_none() {
                    let plan = best_constant_plan(ctx);
                    self.cached = Some(CachedPlan { plan, computed_at: now });
                }
                self.cached.as_ref().expect("just populated").plan.clone()
            }
        }
    }

    /// Steady-state optimisation for the long-term policies: solve at the
    /// private price, check forecast demand, re-solve at the blended
    /// price (one fixed-point refinement is enough because the blended
    /// price is monotone in plan work).
    fn steady_state_plan(&self, ctx: &AllocationContext<'_>) -> ExecutionPlan {
        let mut price = ctx.private_price;
        let mut plan = ExecutionPlan::serial(ctx.model.n_stages());
        for _ in 0..3 {
            let objective = PlanObjective {
                reward: ctx.reward,
                price_per_core_tu: price,
                overhead_tu: ctx.steady_overhead_tu,
            };
            plan = best_plan(ctx.model, ctx.mean_job_size, &objective);
            let work = plan.core_tu(ctx.model, ctx.mean_job_size);
            let new_price = ctx.blended_price(work);
            if (new_price - price).abs() < 1e-9 {
                break;
            }
            price = new_price;
        }
        plan
    }
}

/// Offline best-constant search: evaluate the candidate spectrum under
/// steady-state economics and keep the most profitable plan.
pub fn best_constant_plan(ctx: &AllocationContext<'_>) -> ExecutionPlan {
    let candidates = candidate_plans(ctx.model, ctx.mean_job_size);
    let mut best: Option<(f64, ExecutionPlan)> = None;
    for plan in candidates {
        let work = plan.core_tu(ctx.model, ctx.mean_job_size);
        let objective = PlanObjective {
            reward: ctx.reward,
            price_per_core_tu: ctx.blended_price(work),
            overhead_tu: ctx.steady_overhead_tu,
        };
        let econ = evaluate_plan(ctx.model, ctx.mean_job_size, &plan, &objective);
        match &best {
            Some((p, _)) if *p >= econ.profit => {}
            _ => best = Some((econ.profit, plan)),
        }
    }
    best.expect("candidate set is non-empty").1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(model: &PipelineModel) -> AllocationContext<'_> {
        AllocationContext {
            model,
            reward: RewardFn::paper_time_based(),
            private_price: 5.0,
            public_price: 50.0,
            private_capacity: 624,
            private_free_now: true,
            current_overhead_tu: 1.0,
            arrival_rate: 1.0,
            mean_job_size: 5.0,
            steady_overhead_tu: 1.0,
        }
    }

    #[test]
    fn blended_price_kinks_at_capacity() {
        let m = PipelineModel::paper();
        let c = ctx(&m);
        // demand = rate × work; capacity 624.
        assert_eq!(c.blended_price(600.0), 5.0);
        assert_eq!(c.blended_price(624.0), 5.0);
        let over = c.blended_price(1248.0); // demand 2× capacity
        assert!((over - (5.0 * 0.5 + 50.0 * 0.5)).abs() < 1e-9);
        assert_eq!(c.blended_price(0.0), 5.0);
    }

    #[test]
    fn greedy_uses_instantaneous_price() {
        let m = PipelineModel::paper();
        let mut alloc = Allocator::new(AllocationPolicy::Greedy, 50.0);
        let mut c = ctx(&m);
        let cheap = alloc.plan_for(5.0, SimTime::ZERO, &c);
        c.private_free_now = false;
        let pricey = alloc.plan_for(5.0, SimTime::ZERO, &c);
        assert!(
            pricey.total_core_stages() <= cheap.total_core_stages(),
            "greedy must shrink plans when only public cores are available"
        );
    }

    #[test]
    fn long_term_caches_until_period_expires() {
        let m = PipelineModel::paper();
        let mut alloc = Allocator::new(AllocationPolicy::LongTerm, 50.0);
        let mut c = ctx(&m);
        let p1 = alloc.plan_for(5.0, SimTime::new(0.0), &c);
        // Change the context radically — the cached plan must survive
        // inside the period...
        c.arrival_rate = 100.0;
        let p2 = alloc.plan_for(5.0, SimTime::new(10.0), &c);
        assert_eq!(p1, p2);
        // ...and refresh after it.
        let p3 = alloc.plan_for(5.0, SimTime::new(51.0), &c);
        assert!(
            p3.total_core_stages() <= p1.total_core_stages(),
            "saturating demand must not grow the plan"
        );
    }

    #[test]
    fn best_constant_is_constant() {
        let m = PipelineModel::paper();
        let mut alloc = Allocator::new(AllocationPolicy::BestConstant, 50.0);
        let c = ctx(&m);
        let p1 = alloc.plan_for(5.0, SimTime::new(0.0), &c);
        let p2 = alloc.plan_for(2.0, SimTime::new(500.0), &c);
        let p3 = alloc.plan_for(8.0, SimTime::new(9000.0), &c);
        assert_eq!(p1, p2);
        assert_eq!(p2, p3);
    }

    #[test]
    fn best_constant_beats_serial() {
        let m = PipelineModel::paper();
        let c = ctx(&m);
        let plan = best_constant_plan(&c);
        let objective =
            PlanObjective { reward: c.reward, price_per_core_tu: 5.0, overhead_tu: 1.0 };
        let chosen = evaluate_plan(&m, 5.0, &plan, &objective);
        let serial = evaluate_plan(&m, 5.0, &ExecutionPlan::serial(7), &objective);
        assert!(chosen.profit > serial.profit);
    }

    #[test]
    fn adaptive_reacts_to_observed_rate() {
        let m = PipelineModel::paper();
        let mut quiet_alloc = Allocator::new(AllocationPolicy::LongTermAdaptive, 50.0);
        let mut busy_alloc = Allocator::new(AllocationPolicy::LongTermAdaptive, 50.0);
        let mut c = ctx(&m);
        c.arrival_rate = 0.2; // quiet: demand well under capacity
        let quiet = quiet_alloc.plan_for(5.0, SimTime::ZERO, &c);
        c.arrival_rate = 20.0; // heavy: forecast demand far over capacity
        let busy = busy_alloc.plan_for(5.0, SimTime::ZERO, &c);
        assert!(
            busy.total_core_stages() < quiet.total_core_stages(),
            "under forecast saturation the adaptive plan must economise ({} vs {})",
            busy.total_core_stages(),
            quiet.total_core_stages()
        );
    }

    #[test]
    fn names_match_table_i() {
        assert_eq!(AllocationPolicy::Greedy.name(), "greedy");
        assert_eq!(AllocationPolicy::LongTerm.name(), "long-term");
        assert_eq!(AllocationPolicy::LongTermAdaptive.name(), "long-term-adaptive");
        assert_eq!(AllocationPolicy::BestConstant.name(), "best-constant");
        assert_eq!(AllocationPolicy::all().len(), 4);
    }
}
