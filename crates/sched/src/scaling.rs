//! Horizontal-scaling policies (Table I).
//!
//! "Should a worker be hired from the elastic cloud to run it immediately,
//! or should it be delayed until an existing worker becomes available?"
//! (§III-A.2). Private capacity is always used first — it is strictly
//! cheaper. The policies differ in what happens once the private tier is
//! full:
//!
//! * **Always-scale** — hire a public worker whenever a task would wait.
//! * **Never-scale** — never pay public prices; wait for a private worker.
//! * **Predictive** — hire iff the Eq. 1 delay cost of the projected wait
//!   exceeds the cost of the hire.
//!
//! Every decision can be narrated to the sim-trace layer via
//! [`ScalingPolicy::decide_traced`], carrying the Eq. 1 numbers that
//! justified it — the paper's core comparison made observable.

use crate::aggregate::Eq1Pricer;
use scan_sim::{ScalingChoice, SimTime, TraceEvent, Tracer};
use scan_workload::reward::RewardFn;
use serde::{Deserialize, Serialize};

/// Table I's horizontal-scaling algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingPolicy {
    /// Hire whenever a task would otherwise wait.
    AlwaysScale,
    /// Only ever use the private tier.
    NeverScale,
    /// Compare delay cost (Eq. 1) with hire cost.
    Predictive,
}

impl ScalingPolicy {
    /// Display name matching Table I.
    pub fn name(&self) -> &'static str {
        match self {
            ScalingPolicy::AlwaysScale => "always-scale",
            ScalingPolicy::NeverScale => "never-scale",
            ScalingPolicy::Predictive => "predictive",
        }
    }

    /// All three, for sweeps.
    pub fn all() -> [ScalingPolicy; 3] {
        [ScalingPolicy::Predictive, ScalingPolicy::AlwaysScale, ScalingPolicy::NeverScale]
    }
}

/// Everything a scaling decision sees. Borrows the stalled class's
/// incremental Eq. 1 pricing window from the caller — decisions read a
/// few cached aggregate numbers instead of a per-dispatch queue walk.
#[derive(Debug, Clone)]
pub struct ScalingContext<'a> {
    /// True if the private tier can host the needed shape right now.
    pub private_has_capacity: bool,
    /// Eq. 1 pricer over the stalled class (Eq. 1's `Q`, aggregated).
    pub eq1: Eq1Pricer<'a>,
    /// True pending-entry depth of the stalled class queue (tracing: the
    /// Eq. 1 window caps and dedups, so its length understates load).
    pub queue_depth: u32,
    /// Projected wait until an existing worker frees up, TU.
    pub expected_wait_tu: f64,
    /// Public price per core·TU.
    pub public_price_per_core_tu: f64,
    /// Pipeline stage of the stalled class (trace labelling).
    pub stage: u32,
    /// Cores the new worker would need.
    pub cores_needed: u32,
    /// Boot penalty a new hire pays, TU.
    pub boot_penalty_tu: f64,
    /// Expected run time of the head task, TU.
    pub expected_task_tu: f64,
    /// The reward scheme in force.
    pub reward: RewardFn,
}

/// The decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingDecision {
    /// Hire from the private tier (free capacity exists).
    HirePrivate,
    /// Hire from the public tier.
    HirePublic,
    /// Let the task wait for an existing worker.
    Wait,
}

/// The Eq. 1 numbers behind a decision. Both are NaN when the deciding
/// branch never priced the alternatives (private capacity was free, or
/// the policy decides unconditionally).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionCosts {
    /// Eq. 1 delay cost of waiting out the projected delay (CU).
    pub delay_cost: f64,
    /// Cost of hiring capacity for boot + one task (CU).
    pub hire_cost: f64,
}

impl DecisionCosts {
    /// The "no comparison was made" marker.
    pub const UNPRICED: DecisionCosts = DecisionCosts { delay_cost: f64::NAN, hire_cost: f64::NAN };
}

impl ScalingPolicy {
    /// Decides for one stalled queue head.
    pub fn decide(&self, ctx: &ScalingContext<'_>) -> ScalingDecision {
        self.decide_priced(ctx).0
    }

    /// Decides, and reports the delay-cost-versus-hire-cost comparison
    /// that justified the decision (Eq. 1; NaN when unpriced).
    pub fn decide_priced(&self, ctx: &ScalingContext<'_>) -> (ScalingDecision, DecisionCosts) {
        if ctx.private_has_capacity {
            // All policies use cheap private capacity when it exists —
            // never-scale means "never scale *beyond the private tier*".
            return (ScalingDecision::HirePrivate, DecisionCosts::UNPRICED);
        }
        match self {
            ScalingPolicy::AlwaysScale => (ScalingDecision::HirePublic, DecisionCosts::UNPRICED),
            ScalingPolicy::NeverScale => (ScalingDecision::Wait, DecisionCosts::UNPRICED),
            ScalingPolicy::Predictive => {
                // What the queue loses by waiting for an existing worker
                // (the new hire still pays the boot penalty, so the
                // avoided delay is wait − boot, floored at zero).
                let avoided_delay = (ctx.expected_wait_tu - ctx.boot_penalty_tu).max(0.0);
                let dc = ctx.eq1.delay_cost(&ctx.reward, avoided_delay);
                // What the hire costs: public cores for boot + the task.
                let hire_cost = ctx.public_price_per_core_tu
                    * ctx.cores_needed as f64
                    * (ctx.boot_penalty_tu + ctx.expected_task_tu);
                let decision = if dc > hire_cost {
                    ScalingDecision::HirePublic
                } else {
                    ScalingDecision::Wait
                };
                (decision, DecisionCosts { delay_cost: dc, hire_cost })
            }
        }
    }

    /// Decides and emits a [`TraceEvent::ScalingDecision`] carrying the
    /// Eq. 1 comparison. With no observer attached this costs exactly
    /// what [`ScalingPolicy::decide`] costs.
    pub fn decide_traced(
        &self,
        ctx: &ScalingContext<'_>,
        at: SimTime,
        tracer: &Tracer,
    ) -> ScalingDecision {
        self.decide_priced_traced(ctx, at, tracer).0
    }

    /// [`ScalingPolicy::decide_traced`], but also hands the Eq. 1 costs
    /// back to the caller — the metrics layer records the decision margin
    /// `|delay_cost − hire_cost|` from them without re-pricing.
    pub fn decide_priced_traced(
        &self,
        ctx: &ScalingContext<'_>,
        at: SimTime,
        tracer: &Tracer,
    ) -> (ScalingDecision, DecisionCosts) {
        let (decision, costs) = self.decide_priced(ctx);
        tracer.emit_with(at, || TraceEvent::ScalingDecision {
            stage: ctx.stage,
            cores: ctx.cores_needed,
            queued_jobs: ctx.queue_depth,
            delay_cost: costs.delay_cost,
            hire_cost: costs.hire_cost,
            choice: match decision {
                ScalingDecision::HirePrivate => ScalingChoice::HirePrivate,
                ScalingDecision::HirePublic => ScalingChoice::HirePublic,
                ScalingDecision::Wait => ScalingChoice::Wait,
            },
        });
        (decision, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::QueueAggregates;
    use crate::queue::TaskClass;
    use scan_sim::RingBuffer;
    use std::cell::RefCell;
    use std::rc::Rc;

    const CLASS: TaskClass = TaskClass { stage: 0, cores: 4 };

    /// `len` queued single-shard jobs of size 5 (the old fixture's
    /// shape); the reward is time-based, so ETT terms are irrelevant.
    fn agg(len: usize) -> QueueAggregates {
        let mut a = QueueAggregates::new();
        for i in 0..len {
            a.on_enqueue(CLASS, i as u32, 5.0, SimTime::ZERO, 1);
        }
        a
    }

    fn ctx(private: bool, wait: f64, agg: &QueueAggregates) -> ScalingContext<'_> {
        let eq1 = agg.pricer(CLASS, 0, 256, SimTime::ZERO);
        ScalingContext {
            private_has_capacity: private,
            queue_depth: eq1.window_len() as u32,
            eq1,
            expected_wait_tu: wait,
            public_price_per_core_tu: 50.0,
            stage: 0,
            cores_needed: 4,
            boot_penalty_tu: 0.5,
            expected_task_tu: 3.0,
            reward: RewardFn::paper_time_based(),
        }
    }

    #[test]
    fn everyone_prefers_private() {
        let q = agg(5);
        for p in ScalingPolicy::all() {
            assert_eq!(p.decide(&ctx(true, 10.0, &q)), ScalingDecision::HirePrivate);
        }
    }

    #[test]
    fn always_scale_always_hires_public() {
        let q = agg(0);
        assert_eq!(
            ScalingPolicy::AlwaysScale.decide(&ctx(false, 0.1, &q)),
            ScalingDecision::HirePublic
        );
    }

    #[test]
    fn never_scale_always_waits() {
        let q = agg(50);
        assert_eq!(ScalingPolicy::NeverScale.decide(&ctx(false, 100.0, &q)), ScalingDecision::Wait);
    }

    #[test]
    fn predictive_hires_under_pressure() {
        // Long wait, deep queue: delay cost = 20 jobs × 5 units × 15 ×
        // (10 − 0.5) ≈ 14 250 ≫ hire cost 50 × 4 × 3.5 = 700.
        let q = agg(20);
        assert_eq!(
            ScalingPolicy::Predictive.decide(&ctx(false, 10.0, &q)),
            ScalingDecision::HirePublic
        );
    }

    #[test]
    fn predictive_waits_when_cheap() {
        // Tiny wait: avoided delay ≈ 0 → cost of waiting ≈ 0 < hire cost.
        let q = agg(20);
        assert_eq!(ScalingPolicy::Predictive.decide(&ctx(false, 0.4, &q)), ScalingDecision::Wait);
        // Empty queue: nothing to lose by waiting.
        let empty = agg(0);
        assert_eq!(
            ScalingPolicy::Predictive.decide(&ctx(false, 10.0, &empty)),
            ScalingDecision::Wait
        );
    }

    #[test]
    fn predictive_threshold_scales_with_price() {
        // A wait that justifies hiring at 50 CU may not at 1000 CU:
        // DC = 3 × 5 × 15 × (5 − 0.5) ≈ 1012 vs hire 50 × 4 × 3.5 = 700.
        let q = agg(3);
        let mut c = ctx(false, 5.0, &q);
        assert_eq!(ScalingPolicy::Predictive.decide(&c), ScalingDecision::HirePublic);
        c.public_price_per_core_tu = 1000.0;
        assert_eq!(ScalingPolicy::Predictive.decide(&c), ScalingDecision::Wait);
    }

    #[test]
    fn priced_decision_exposes_the_eq1_comparison() {
        let q = agg(20);
        let (d, costs) = ScalingPolicy::Predictive.decide_priced(&ctx(false, 10.0, &q));
        assert_eq!(d, ScalingDecision::HirePublic);
        assert!(costs.delay_cost > costs.hire_cost);
        assert!((costs.hire_cost - 50.0 * 4.0 * 3.5).abs() < 1e-9);
        // Unpriced branches report NaN.
        let (_, unpriced) = ScalingPolicy::AlwaysScale.decide_priced(&ctx(false, 1.0, &q));
        assert!(unpriced.delay_cost.is_nan() && unpriced.hire_cost.is_nan());
    }

    #[test]
    fn traced_decision_emits_the_comparison_and_true_depth() {
        let ring = Rc::new(RefCell::new(RingBuffer::new(4)));
        let mut tracer = Tracer::disabled();
        tracer.attach(ring.clone());
        let q = agg(20);
        let mut c = ctx(false, 10.0, &q);
        // The emitted depth is the caller's true entry count, not the
        // (capped, deduped) Eq. 1 window length.
        c.queue_depth = 500;
        let d = ScalingPolicy::Predictive.decide_traced(&c, SimTime::new(7.0), &tracer);
        assert_eq!(d, ScalingDecision::HirePublic);
        let ring = ring.borrow();
        assert_eq!(ring.len(), 1);
        let (at, ev) = ring.events().next().copied().unwrap();
        assert_eq!(at, SimTime::new(7.0));
        match ev {
            TraceEvent::ScalingDecision { queued_jobs, delay_cost, hire_cost, choice, .. } => {
                assert_eq!(queued_jobs, 500);
                assert!(delay_cost > hire_cost);
                assert_eq!(choice, ScalingChoice::HirePublic);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn names_match_table_i() {
        assert_eq!(ScalingPolicy::AlwaysScale.name(), "always-scale");
        assert_eq!(ScalingPolicy::NeverScale.name(), "never-scale");
        assert_eq!(ScalingPolicy::Predictive.name(), "predictive");
    }
}
