//! Horizontal-scaling policies (Table I).
//!
//! "Should a worker be hired from the elastic cloud to run it immediately,
//! or should it be delayed until an existing worker becomes available?"
//! (§III-A.2). Private capacity is always used first — it is strictly
//! cheaper. The policies differ in what happens once the private tier is
//! full:
//!
//! * **Always-scale** — hire a public worker whenever a task would wait.
//! * **Never-scale** — never pay public prices; wait for a private worker.
//! * **Predictive** — hire iff the Eq. 1 delay cost of the projected wait
//!   exceeds the cost of the hire.

use crate::delay_cost::{delay_cost, QueuedJobView};
use scan_workload::reward::RewardFn;
use serde::{Deserialize, Serialize};

/// Table I's horizontal-scaling algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingPolicy {
    /// Hire whenever a task would otherwise wait.
    AlwaysScale,
    /// Only ever use the private tier.
    NeverScale,
    /// Compare delay cost (Eq. 1) with hire cost.
    Predictive,
}

impl ScalingPolicy {
    /// Display name matching Table I.
    pub fn name(&self) -> &'static str {
        match self {
            ScalingPolicy::AlwaysScale => "always-scale",
            ScalingPolicy::NeverScale => "never-scale",
            ScalingPolicy::Predictive => "predictive",
        }
    }

    /// All three, for sweeps.
    pub fn all() -> [ScalingPolicy; 3] {
        [ScalingPolicy::Predictive, ScalingPolicy::AlwaysScale, ScalingPolicy::NeverScale]
    }
}

/// Everything a scaling decision sees.
#[derive(Debug, Clone)]
pub struct ScalingContext {
    /// True if the private tier can host the needed shape right now.
    pub private_has_capacity: bool,
    /// Jobs affected by the stall (the stalled queue, Eq. 1's `Q`).
    pub queued: Vec<QueuedJobView>,
    /// Projected wait until an existing worker frees up, TU.
    pub expected_wait_tu: f64,
    /// Public price per core·TU.
    pub public_price_per_core_tu: f64,
    /// Cores the new worker would need.
    pub cores_needed: u32,
    /// Boot penalty a new hire pays, TU.
    pub boot_penalty_tu: f64,
    /// Expected run time of the head task, TU.
    pub expected_task_tu: f64,
    /// The reward scheme in force.
    pub reward: RewardFn,
}

/// The decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingDecision {
    /// Hire from the private tier (free capacity exists).
    HirePrivate,
    /// Hire from the public tier.
    HirePublic,
    /// Let the task wait for an existing worker.
    Wait,
}

impl ScalingPolicy {
    /// Decides for one stalled queue head.
    pub fn decide(&self, ctx: &ScalingContext) -> ScalingDecision {
        if ctx.private_has_capacity {
            // All policies use cheap private capacity when it exists —
            // never-scale means "never scale *beyond the private tier*".
            return ScalingDecision::HirePrivate;
        }
        match self {
            ScalingPolicy::AlwaysScale => ScalingDecision::HirePublic,
            ScalingPolicy::NeverScale => ScalingDecision::Wait,
            ScalingPolicy::Predictive => {
                // What the queue loses by waiting for an existing worker
                // (the new hire still pays the boot penalty, so the
                // avoided delay is wait − boot, floored at zero).
                let avoided_delay = (ctx.expected_wait_tu - ctx.boot_penalty_tu).max(0.0);
                let dc = delay_cost(&ctx.reward, &ctx.queued, avoided_delay);
                // What the hire costs: public cores for boot + the task.
                let hire_cost = ctx.public_price_per_core_tu
                    * ctx.cores_needed as f64
                    * (ctx.boot_penalty_tu + ctx.expected_task_tu);
                if dc > hire_cost {
                    ScalingDecision::HirePublic
                } else {
                    ScalingDecision::Wait
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(private: bool, wait: f64, queue_len: usize) -> ScalingContext {
        ScalingContext {
            private_has_capacity: private,
            queued: (0..queue_len)
                .map(|_| QueuedJobView { size_units: 5.0, ett: 15.0 })
                .collect(),
            expected_wait_tu: wait,
            public_price_per_core_tu: 50.0,
            cores_needed: 4,
            boot_penalty_tu: 0.5,
            expected_task_tu: 3.0,
            reward: RewardFn::paper_time_based(),
        }
    }

    #[test]
    fn everyone_prefers_private() {
        for p in ScalingPolicy::all() {
            assert_eq!(p.decide(&ctx(true, 10.0, 5)), ScalingDecision::HirePrivate);
        }
    }

    #[test]
    fn always_scale_always_hires_public() {
        assert_eq!(
            ScalingPolicy::AlwaysScale.decide(&ctx(false, 0.1, 0)),
            ScalingDecision::HirePublic
        );
    }

    #[test]
    fn never_scale_always_waits() {
        assert_eq!(
            ScalingPolicy::NeverScale.decide(&ctx(false, 100.0, 50)),
            ScalingDecision::Wait
        );
    }

    #[test]
    fn predictive_hires_under_pressure() {
        // Long wait, deep queue: delay cost = 20 jobs × 5 units × 15 ×
        // (10 − 0.5) ≈ 14 250 ≫ hire cost 50 × 4 × 3.5 = 700.
        assert_eq!(
            ScalingPolicy::Predictive.decide(&ctx(false, 10.0, 20)),
            ScalingDecision::HirePublic
        );
    }

    #[test]
    fn predictive_waits_when_cheap() {
        // Tiny wait: avoided delay ≈ 0 → cost of waiting ≈ 0 < hire cost.
        assert_eq!(ScalingPolicy::Predictive.decide(&ctx(false, 0.4, 20)), ScalingDecision::Wait);
        // Empty queue: nothing to lose by waiting.
        assert_eq!(ScalingPolicy::Predictive.decide(&ctx(false, 10.0, 0)), ScalingDecision::Wait);
    }

    #[test]
    fn predictive_threshold_scales_with_price() {
        // A wait that justifies hiring at 50 CU may not at 1000 CU:
        // DC = 3 × 5 × 15 × (5 − 0.5) ≈ 1012 vs hire 50 × 4 × 3.5 = 700.
        let mut c = ctx(false, 5.0, 3);
        assert_eq!(ScalingPolicy::Predictive.decide(&c), ScalingDecision::HirePublic);
        c.public_price_per_core_tu = 1000.0;
        assert_eq!(ScalingPolicy::Predictive.decide(&c), ScalingDecision::Wait);
    }

    #[test]
    fn names_match_table_i() {
        assert_eq!(ScalingPolicy::AlwaysScale.name(), "always-scale");
        assert_eq!(ScalingPolicy::NeverScale.name(), "never-scale");
        assert_eq!(ScalingPolicy::Predictive.name(), "predictive");
    }
}
