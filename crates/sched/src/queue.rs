//! Per-class FIFO task queues.
//!
//! §III-B: the scheduler "maintains an in-memory pool of available workers
//! and a FIFO queue of pending tasks per class". A *class* is the worker
//! shape a task needs (its thread count → instance size) plus the pipeline
//! stage (workers are stage-agnostic in software, but the estimators track
//! waits per stage).

use scan_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// The queue key: pipeline stage × worker cores required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskClass {
    /// 0-based pipeline stage.
    pub stage: usize,
    /// Cores a worker needs to serve this class.
    pub cores: u32,
}

/// One pending entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Queued<T> {
    /// The queued payload (a subtask handle at the platform level).
    pub item: T,
    /// When it entered the queue.
    pub enqueued_at: SimTime,
}

/// A FIFO queue with wait accounting.
#[derive(Debug, Clone)]
pub struct TaskQueue<T> {
    items: VecDeque<Queued<T>>,
    /// Completed waits (dequeue time − enqueue time), for EQT feedback.
    total_wait: SimDuration,
    dequeued: u64,
    peak_len: usize,
}

impl<T> Default for TaskQueue<T> {
    fn default() -> Self {
        TaskQueue {
            items: VecDeque::new(),
            total_wait: SimDuration::ZERO,
            dequeued: 0,
            peak_len: 0,
        }
    }
}

impl<T> TaskQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an item.
    pub fn push(&mut self, item: T, now: SimTime) {
        self.items.push_back(Queued { item, enqueued_at: now });
        self.peak_len = self.peak_len.max(self.items.len());
    }

    /// Pops the oldest item, recording its wait. Returns the item and how
    /// long it waited.
    pub fn pop(&mut self, now: SimTime) -> Option<(T, SimDuration)> {
        let q = self.items.pop_front()?;
        let wait = now - q.enqueued_at;
        self.total_wait += wait;
        self.dequeued += 1;
        Some((q.item, wait))
    }

    /// The head's enqueue time, if any.
    pub fn head_enqueued_at(&self) -> Option<SimTime> {
        self.items.front().map(|q| q.enqueued_at)
    }

    /// Queue length.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Longest the queue has ever been.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Mean wait of items already dequeued.
    pub fn mean_wait(&self) -> f64 {
        if self.dequeued == 0 {
            0.0
        } else {
            self.total_wait.as_tu() / self.dequeued as f64
        }
    }

    /// Iterates pending items oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Queued<T>> {
        self.items.iter()
    }
}

/// A keyed family of queues.
#[derive(Debug, Clone)]
pub struct QueueSet<T> {
    queues: BTreeMap<TaskClass, TaskQueue<T>>,
}

impl<T> Default for QueueSet<T> {
    fn default() -> Self {
        QueueSet { queues: BTreeMap::new() }
    }
}

impl<T> QueueSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes into (creating if needed) the class queue.
    pub fn push(&mut self, class: TaskClass, item: T, now: SimTime) {
        self.queues.entry(class).or_default().push(item, now);
    }

    /// Pops the oldest item of a class.
    pub fn pop(&mut self, class: TaskClass, now: SimTime) -> Option<(T, SimDuration)> {
        self.queues.get_mut(&class)?.pop(now)
    }

    /// The queue for a class, if it exists.
    pub fn get(&self, class: TaskClass) -> Option<&TaskQueue<T>> {
        self.queues.get(&class)
    }

    /// Total pending items across classes.
    pub fn total_len(&self) -> usize {
        self.queues.values().map(TaskQueue::len).sum()
    }

    /// Pending items for one stage across shapes.
    pub fn stage_len(&self, stage: usize) -> usize {
        self.queues.iter().filter(|(c, _)| c.stage == stage).map(|(_, q)| q.len()).sum()
    }

    /// Iterates `(class, queue)` pairs in key order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&TaskClass, &TaskQueue<T>)> {
        self.queues.iter()
    }

    /// Classes with at least one pending item, in key order.
    pub fn nonempty_classes(&self) -> Vec<TaskClass> {
        self.queues.iter().filter(|(_, q)| !q.is_empty()).map(|(c, _)| *c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn fifo_order_and_waits() {
        let mut q = TaskQueue::new();
        q.push("a", t(0.0));
        q.push("b", t(1.0));
        let (a, wa) = q.pop(t(3.0)).unwrap();
        assert_eq!(a, "a");
        assert_eq!(wa, SimDuration::new(3.0));
        let (b, wb) = q.pop(t(4.0)).unwrap();
        assert_eq!(b, "b");
        assert_eq!(wb, SimDuration::new(3.0));
        assert!(q.pop(t(5.0)).is_none());
        assert_eq!(q.mean_wait(), 3.0);
        assert_eq!(q.peak_len(), 2);
    }

    #[test]
    fn head_enqueued_at_tracks_front() {
        let mut q = TaskQueue::new();
        assert!(q.head_enqueued_at().is_none());
        q.push(1, t(2.0));
        q.push(2, t(5.0));
        assert_eq!(q.head_enqueued_at(), Some(t(2.0)));
        q.pop(t(6.0));
        assert_eq!(q.head_enqueued_at(), Some(t(5.0)));
    }

    #[test]
    fn queue_set_routes_by_class() {
        let mut qs: QueueSet<u32> = QueueSet::new();
        let c1 = TaskClass { stage: 0, cores: 4 };
        let c2 = TaskClass { stage: 0, cores: 8 };
        let c3 = TaskClass { stage: 3, cores: 4 };
        qs.push(c1, 10, t(0.0));
        qs.push(c2, 20, t(0.0));
        qs.push(c3, 30, t(0.0));
        qs.push(c1, 11, t(1.0));
        assert_eq!(qs.total_len(), 4);
        assert_eq!(qs.stage_len(0), 3);
        assert_eq!(qs.stage_len(3), 1);
        assert_eq!(qs.pop(c1, t(2.0)).unwrap().0, 10);
        assert_eq!(qs.get(c1).unwrap().len(), 1);
        assert_eq!(qs.nonempty_classes(), vec![c1, c2, c3]);
        assert!(qs.pop(TaskClass { stage: 9, cores: 1 }, t(2.0)).is_none());
    }

    #[test]
    fn mean_wait_empty_queue() {
        let q: TaskQueue<()> = TaskQueue::new();
        assert_eq!(q.mean_wait(), 0.0);
    }
}
