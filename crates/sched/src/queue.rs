//! Per-class FIFO task queues.
//!
//! §III-B: the scheduler "maintains an in-memory pool of available workers
//! and a FIFO queue of pending tasks per class". A *class* is the worker
//! shape a task needs (its thread count → instance size) plus the pipeline
//! stage (workers are stage-agnostic in software, but the estimators track
//! waits per stage).

use scan_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Worker shapes (cores) a task class can ask for, ascending. Powers of
/// two: shape ↔ slot conversion is a `trailing_zeros`.
pub const SHAPE_CORES: [u32; 5] = [1, 2, 4, 8, 16];

/// Number of distinct worker shapes.
pub const N_SHAPES: usize = SHAPE_CORES.len();

/// Dense slot for a shape (1→0, 2→1, 4→2, 8→3, 16→4).
///
/// # Panics
/// Panics (in debug builds) when `cores` is not a valid shape.
#[inline]
pub fn shape_slot(cores: u32) -> usize {
    let slot = cores.trailing_zeros() as usize;
    debug_assert!(
        slot < N_SHAPES && SHAPE_CORES[slot] == cores,
        "invalid worker shape: {cores} cores"
    );
    slot
}

/// The queue key: pipeline stage × worker cores required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskClass {
    /// 0-based pipeline stage.
    pub stage: usize,
    /// Cores a worker needs to serve this class.
    pub cores: u32,
}

/// One pending entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Queued<T> {
    /// The queued payload (a subtask handle at the platform level).
    pub item: T,
    /// When it entered the queue.
    pub enqueued_at: SimTime,
}

/// A FIFO queue with wait accounting.
#[derive(Debug, Clone)]
pub struct TaskQueue<T> {
    items: VecDeque<Queued<T>>,
    /// Completed waits (dequeue time − enqueue time), for EQT feedback.
    total_wait: SimDuration,
    dequeued: u64,
    peak_len: usize,
}

impl<T> Default for TaskQueue<T> {
    fn default() -> Self {
        TaskQueue {
            items: VecDeque::new(),
            total_wait: SimDuration::ZERO,
            dequeued: 0,
            peak_len: 0,
        }
    }
}

impl<T> TaskQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an item.
    pub fn push(&mut self, item: T, now: SimTime) {
        self.items.push_back(Queued { item, enqueued_at: now });
        self.peak_len = self.peak_len.max(self.items.len());
    }

    /// Pops the oldest item, recording its wait. Returns the item and how
    /// long it waited.
    pub fn pop(&mut self, now: SimTime) -> Option<(T, SimDuration)> {
        let q = self.items.pop_front()?;
        let wait = now - q.enqueued_at;
        self.total_wait += wait;
        self.dequeued += 1;
        Some((q.item, wait))
    }

    /// The head's enqueue time, if any.
    pub fn head_enqueued_at(&self) -> Option<SimTime> {
        self.items.front().map(|q| q.enqueued_at)
    }

    /// Queue length.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Longest the queue has ever been.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Mean wait of items already dequeued.
    pub fn mean_wait(&self) -> f64 {
        if self.dequeued == 0 {
            0.0
        } else {
            self.total_wait.as_tu() / self.dequeued as f64
        }
    }

    /// Iterates pending items oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Queued<T>> {
        self.items.iter()
    }
}

/// A keyed family of queues, stored densely.
///
/// Classes are `(stage, shape)` pairs where the shape axis is the fixed
/// five-slot [`SHAPE_CORES`] array, so the whole family is a
/// `Vec<[TaskQueue; 5]>` indexed by stage — every lookup is two array
/// indexes, and iteration walks stages then shapes in exactly the
/// `(stage, cores)` key order the old `BTreeMap` representation produced.
#[derive(Debug, Clone)]
pub struct QueueSet<T> {
    stages: Vec<[TaskQueue<T>; N_SHAPES]>,
    /// Total pending items across all queues (kept incrementally).
    total: usize,
}

impl<T> Default for QueueSet<T> {
    fn default() -> Self {
        QueueSet { stages: Vec::new(), total: 0 }
    }
}

impl<T> QueueSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes into (creating if needed) the class queue.
    pub fn push(&mut self, class: TaskClass, item: T, now: SimTime) {
        while self.stages.len() <= class.stage {
            self.stages.push(std::array::from_fn(|_| TaskQueue::new()));
        }
        self.stages[class.stage][shape_slot(class.cores)].push(item, now);
        self.total += 1;
    }

    /// Pops the oldest item of a class.
    pub fn pop(&mut self, class: TaskClass, now: SimTime) -> Option<(T, SimDuration)> {
        let popped = self.stages.get_mut(class.stage)?[shape_slot(class.cores)].pop(now);
        if popped.is_some() {
            self.total -= 1;
        }
        popped
    }

    /// The queue for a class, if its stage has ever been seen.
    pub fn get(&self, class: TaskClass) -> Option<&TaskQueue<T>> {
        Some(&self.stages.get(class.stage)?[shape_slot(class.cores)])
    }

    /// Number of stage rows allocated so far (stages are added lazily as
    /// classes are first pushed).
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Direct access to one `(stage, shape-slot)` queue, if allocated.
    pub fn at(&self, stage: usize, slot: usize) -> Option<&TaskQueue<T>> {
        Some(&self.stages.get(stage)?[slot])
    }

    /// Total pending items across classes.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// Pending items for one shape slot across stages (demand on a
    /// worker shape regardless of stage).
    pub fn shape_len(&self, slot: usize) -> usize {
        self.stages.iter().map(|row| row[slot].len()).sum()
    }

    /// Pending items for one stage across shapes.
    pub fn stage_len(&self, stage: usize) -> usize {
        match self.stages.get(stage) {
            Some(row) => row.iter().map(TaskQueue::len).sum(),
            None => 0,
        }
    }

    /// Iterates `(class, queue)` pairs in key order (deterministic:
    /// ascending stage, then ascending cores).
    pub fn iter(&self) -> impl Iterator<Item = (TaskClass, &TaskQueue<T>)> {
        self.stages.iter().enumerate().flat_map(|(stage, row)| {
            row.iter()
                .enumerate()
                .map(move |(slot, q)| (TaskClass { stage, cores: SHAPE_CORES[slot] }, q))
        })
    }

    /// Classes with at least one pending item, in key order.
    pub fn nonempty_classes(&self) -> Vec<TaskClass> {
        self.iter().filter(|(_, q)| !q.is_empty()).map(|(c, _)| c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn fifo_order_and_waits() {
        let mut q = TaskQueue::new();
        q.push("a", t(0.0));
        q.push("b", t(1.0));
        let (a, wa) = q.pop(t(3.0)).unwrap();
        assert_eq!(a, "a");
        assert_eq!(wa, SimDuration::new(3.0));
        let (b, wb) = q.pop(t(4.0)).unwrap();
        assert_eq!(b, "b");
        assert_eq!(wb, SimDuration::new(3.0));
        assert!(q.pop(t(5.0)).is_none());
        assert_eq!(q.mean_wait(), 3.0);
        assert_eq!(q.peak_len(), 2);
    }

    #[test]
    fn head_enqueued_at_tracks_front() {
        let mut q = TaskQueue::new();
        assert!(q.head_enqueued_at().is_none());
        q.push(1, t(2.0));
        q.push(2, t(5.0));
        assert_eq!(q.head_enqueued_at(), Some(t(2.0)));
        q.pop(t(6.0));
        assert_eq!(q.head_enqueued_at(), Some(t(5.0)));
    }

    #[test]
    fn queue_set_routes_by_class() {
        let mut qs: QueueSet<u32> = QueueSet::new();
        let c1 = TaskClass { stage: 0, cores: 4 };
        let c2 = TaskClass { stage: 0, cores: 8 };
        let c3 = TaskClass { stage: 3, cores: 4 };
        qs.push(c1, 10, t(0.0));
        qs.push(c2, 20, t(0.0));
        qs.push(c3, 30, t(0.0));
        qs.push(c1, 11, t(1.0));
        assert_eq!(qs.total_len(), 4);
        assert_eq!(qs.stage_len(0), 3);
        assert_eq!(qs.stage_len(3), 1);
        assert_eq!(qs.pop(c1, t(2.0)).unwrap().0, 10);
        assert_eq!(qs.get(c1).unwrap().len(), 1);
        assert_eq!(qs.nonempty_classes(), vec![c1, c2, c3]);
        assert!(qs.pop(TaskClass { stage: 9, cores: 1 }, t(2.0)).is_none());
    }

    #[test]
    fn mean_wait_empty_queue() {
        let q: TaskQueue<()> = TaskQueue::new();
        assert_eq!(q.mean_wait(), 0.0);
    }
}
