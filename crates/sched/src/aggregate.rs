//! Incremental Eq. 1 — per-class delay-cost aggregates.
//!
//! The scaling decision prices Eq. 1 over a *queue view*: the distinct
//! jobs among the first `MAX_QUEUE_VIEW` pending entries of the stalled
//! class, less the entries already covered by hires in flight. Deriving
//! that view from scratch on every decision is O(queue) on the critical
//! path of every task-front event. This module maintains the same view
//! *incrementally*: a per-class FIFO mirror of distinct queued jobs with
//! cached per-job Eq. 1 terms, updated on enqueue/dequeue, so a decision
//! reads a few cached numbers instead of walking the queue.
//!
//! Two structural invariants of the platform make the mirror exact:
//!
//! 1. **Batch pushes** — all shard entries of one job enter a class
//!    queue consecutively (one `enqueue_stage` call), and a job passes
//!    through each `(stage, cores)` class at most once. The deduped view
//!    therefore sees each job exactly once, in push order.
//! 2. **FIFO pops** — entries only ever leave from the front, so the
//!    mirror's deque order *is* the view order, and the skip/cap entry
//!    window maps onto a contiguous job range.
//!
//! Each job term carries *cumulative* coordinates assigned at push time
//! and never mutated — `cum_entries` (total shard entries ever pushed
//! through this job) and `cum_d` (running Σ size). Window sums are then
//! two-point differences, which sidesteps the add/remove float-drift
//! problem of a running accumulator: the windowed Σd is reproducible for
//! any interleaving of operations.
//!
//! Pricing splits by reward scheme:
//!
//! * **Time-based** — `delay_loss(d, t, delay) = d·rpenalty·delay` is
//!   independent of ETT, so the window's delay cost is
//!   `Σd · rpenalty · delay`: O(log n) per decision (two binary searches
//!   for the window bounds), within a documented ulp bound of the naive
//!   per-job walk (the factored sum reassociates the additions).
//! * **Throughput / deadline / plateau** — `delay_loss` bends with each
//!   job's ETT, so the pricer walks the window's *cached* terms: same
//!   per-job operations in the same order as the naive walk (bit-exact),
//!   but reading a cached future-stage estimate instead of re-deriving
//!   it from the stage models. Cached futures revalidate lazily by
//!   revision: [`crate::estimate::EttEstimator::revision`] bumps when a
//!   queue-wait observation or a model refresh changes `future_from`,
//!   and [`QueueAggregates::revalidate_window`] refreshes only the stale
//!   terms inside the priced window.
//!
//! The platform keeps the original fused full walk as a debug-build
//! oracle (`check_eq1_oracle` in `platform::hiring`) asserting both
//! window shape and cost against this module on every decision.

use crate::queue::{shape_slot, TaskClass, N_SHAPES};
use scan_sim::SimTime;
use scan_workload::reward::RewardFn;
use std::collections::VecDeque;

/// Cached Eq. 1 term for one distinct queued job within a class.
#[derive(Debug, Clone, Copy)]
struct JobTerm {
    /// Job arena slot (dense id), for revalidation callbacks.
    job: u32,
    /// Job input size in units (the reward's `d`).
    d: f64,
    /// Submission instant; elapsed latency is `now − submitted_at` at
    /// pricing time, so it never goes stale.
    submitted_at: SimTime,
    /// Cached future-stage estimate `Σ (EQT_i + EET_i)` from the job's
    /// current stage. Valid while `revision` matches the estimator's.
    future: f64,
    /// Estimator revision `future` was computed at (0 = never computed).
    revision: u64,
    /// Shard entries of this job still pending in the class queue.
    entries: u32,
    /// Total shard entries ever pushed to this class, through this job.
    cum_entries: u64,
    /// Running Σ size over all jobs ever pushed, through this job.
    cum_d: f64,
}

/// One class's mirror: the distinct-job FIFO plus pop-side cursors.
#[derive(Debug, Clone, Default)]
struct ClassAgg {
    /// Distinct pending jobs in queue (= view) order.
    jobs: VecDeque<JobTerm>,
    /// Shard entries popped from this class so far.
    popped_entries: u64,
    /// `cum_d` of the most recently fully-popped job — the Σd baseline
    /// when the window starts at the deque front.
    base_cum_d: f64,
    /// Shard entries ever pushed to this class.
    pushed_entries: u64,
    /// Σ size over all jobs ever pushed (`cum_d` of the newest job).
    pushed_cum_d: f64,
}

impl ClassAgg {
    /// Maps an entry-coordinate window `[lo, hi)` (global, pop-cursor
    /// based) to the contiguous job range `[s, e)` the deduped view
    /// covers: a job is visible iff any of its pending entries lies in
    /// the window. Both bounds are binary searches over monotone
    /// cumulative coordinates.
    fn job_window(&self, lo: u64, hi: u64) -> (usize, usize) {
        // First job with a pending entry at or past `lo`: pending
        // entries of job k end at cum_entries_k.
        let s = self.jobs.partition_point(|t| t.cum_entries <= lo);
        // First job whose pending entries start at or past `hi`: the
        // pending span of job k starts at cum_entries_k − entries_k
        // (pops are FIFO, so what remains is the tail of its batch).
        let e = self.jobs.partition_point(|t| t.cum_entries - u64::from(t.entries) < hi);
        (s, e.max(s))
    }

    /// Windowed Σd over jobs `[s, e)` as a two-point difference of the
    /// cumulative sums (exactly reproducible for any op interleaving).
    fn window_d_sum(&self, s: usize, e: usize) -> f64 {
        if e == s {
            return 0.0;
        }
        let base = if s == 0 { self.base_cum_d } else { self.jobs[s - 1].cum_d };
        self.jobs[e - 1].cum_d - base
    }

    /// The deque's window `[s, e)` as (at most) two contiguous slices.
    fn window_slices(&self, s: usize, e: usize) -> (&[JobTerm], &[JobTerm]) {
        let (a, b) = self.jobs.as_slices();
        if e <= a.len() {
            (&a[s..e], &[])
        } else if s >= a.len() {
            (&[], &b[s - a.len()..e - a.len()])
        } else {
            (&a[s..], &b[..e - a.len()])
        }
    }
}

/// Per-class incremental Eq. 1 state for every `(stage, shape)` queue.
///
/// Mirrors the platform's `QueueSet`: the owner must call
/// [`QueueAggregates::on_enqueue`] for every job batch pushed and
/// [`QueueAggregates::on_pop`] for every entry popped, in the same
/// order. [`QueueAggregates::pricer`] then prices Eq. 1 for a class
/// without touching the queue itself.
#[derive(Debug, Clone, Default)]
pub struct QueueAggregates {
    stages: Vec<[ClassAgg; N_SHAPES]>,
}

impl QueueAggregates {
    /// An empty mirror.
    pub fn new() -> Self {
        Self::default()
    }

    fn class_mut(&mut self, class: TaskClass) -> &mut ClassAgg {
        while self.stages.len() <= class.stage {
            self.stages.push(std::array::from_fn(|_| ClassAgg::default()));
        }
        &mut self.stages[class.stage][shape_slot(class.cores)]
    }

    fn class(&self, class: TaskClass) -> Option<&ClassAgg> {
        Some(&self.stages.get(class.stage)?[shape_slot(class.cores)])
    }

    /// Records one job's `shards` entries entering `class`'s queue (they
    /// are pushed consecutively, so the mirror gains one term).
    ///
    /// # Panics
    /// Panics on a zero-shard batch.
    pub fn on_enqueue(
        &mut self,
        class: TaskClass,
        job: u32,
        d: f64,
        submitted_at: SimTime,
        shards: u32,
    ) {
        assert!(shards > 0, "a stage batch has at least one shard");
        let agg = self.class_mut(class);
        agg.pushed_entries += shards as u64;
        agg.pushed_cum_d += d;
        agg.jobs.push_back(JobTerm {
            job,
            d,
            submitted_at,
            future: 0.0,
            revision: 0,
            entries: shards,
            cum_entries: agg.pushed_entries,
            cum_d: agg.pushed_cum_d,
        });
    }

    /// Records one entry popped from the front of `class`'s queue.
    ///
    /// # Panics
    /// Panics when the mirror has no pending entries for the class.
    pub fn on_pop(&mut self, class: TaskClass) {
        let agg = self.class_mut(class);
        let front = agg.jobs.front_mut().expect("pop mirrored on an empty class aggregate");
        debug_assert!(front.entries > 0, "front term has pending entries");
        front.entries -= 1;
        agg.popped_entries += 1;
        if front.entries == 0 {
            debug_assert_eq!(
                front.cum_entries, agg.popped_entries,
                "fully-popped job closes exactly at the pop cursor"
            );
            agg.base_cum_d = front.cum_d;
            agg.jobs.pop_front();
        }
    }

    /// Pending entries mirrored for a class (must equal the queue's
    /// length — the platform's debug oracle asserts it).
    pub fn entries(&self, class: TaskClass) -> usize {
        self.class(class).map(|a| (a.pushed_entries - a.popped_entries) as usize).unwrap_or(0)
    }

    /// Refreshes stale cached future-stage estimates inside the Eq. 1
    /// window (`skip` covered entries, `cap` view entries) for an
    /// ETT-dependent reward scheme. `refresh` maps a job slot to its
    /// current future estimate; terms already at `revision` are skipped,
    /// so steady-state decisions between estimator changes touch nothing.
    pub fn revalidate_window(
        &mut self,
        class: TaskClass,
        skip: usize,
        cap: usize,
        revision: u64,
        mut refresh: impl FnMut(u32) -> f64,
    ) {
        let agg = self.class_mut(class);
        let lo = agg.popped_entries + skip as u64;
        let (s, e) = agg.job_window(lo, lo + cap as u64);
        for term in agg.jobs.range_mut(s..e) {
            if term.revision != revision {
                term.future = refresh(term.job);
                term.revision = revision;
            }
        }
    }

    /// Borrows an Eq. 1 pricer over the class's current view window:
    /// the distinct jobs among pending entries `[skip, skip + cap)`.
    pub fn pricer(&self, class: TaskClass, skip: usize, cap: usize, now: SimTime) -> Eq1Pricer<'_> {
        static EMPTY: &[JobTerm] = &[];
        let Some(agg) = self.class(class) else {
            return Eq1Pricer { head: EMPTY, tail: EMPTY, sum_d: 0.0, now };
        };
        let lo = agg.popped_entries + skip as u64;
        let (s, e) = agg.job_window(lo, lo + cap as u64);
        let (head, tail) = agg.window_slices(s, e);
        Eq1Pricer { head, tail, sum_d: agg.window_d_sum(s, e), now }
    }
}

/// A borrowed Eq. 1 pricing view over one class's aggregate window.
#[derive(Debug, Clone, Copy)]
pub struct Eq1Pricer<'a> {
    head: &'a [JobTerm],
    tail: &'a [JobTerm],
    sum_d: f64,
    now: SimTime,
}

impl Eq1Pricer<'_> {
    /// Eq. 1: total reward lost by delaying the window's jobs by `delay`.
    ///
    /// Time-based schemes price in O(1) from the windowed Σd (within
    /// ~1 ulp of the naive walk — the factored product reassociates the
    /// per-job sum); every ETT-dependent scheme walks the cached terms
    /// with bit-identical per-job operations to the naive walk.
    ///
    /// # Panics
    /// Panics on negative `delay`.
    pub fn delay_cost(&self, reward: &RewardFn, delay: f64) -> f64 {
        assert!(delay >= 0.0, "delay must be non-negative");
        match *reward {
            RewardFn::TimeBased { rpenalty, .. } => self.sum_d * rpenalty * delay,
            _ => self
                .head
                .iter()
                .chain(self.tail)
                .map(|t| {
                    let ett = (self.now - t.submitted_at).as_tu() + t.future;
                    reward.delay_loss(t.d, ett.max(0.0), delay)
                })
                .sum(),
        }
    }

    /// Distinct jobs in the window (= the naive view's length).
    pub fn window_len(&self) -> usize {
        self.head.len() + self.tail.len()
    }

    /// True when the window holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.window_len() == 0
    }

    /// Windowed Σ size (the time-based aggregate), for diagnostics.
    pub fn sum_d(&self) -> f64 {
        self.sum_d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay_cost::{delay_cost, QueuedJobView};
    use proptest::prelude::*;

    const CLASS: TaskClass = TaskClass { stage: 0, cores: 4 };

    fn reward_schemes() -> [RewardFn; 4] {
        [
            RewardFn::paper_time_based(),
            RewardFn::paper_throughput_based(),
            RewardFn::Deadline { rmax: 400.0, rpenalty: 15.0, deadline: 20.0 },
            RewardFn::Plateau { rmax: 400.0, rpenalty: 15.0, plateau: 10.0 },
        ]
    }

    /// Deterministic stand-in for the estimator's future-stage sum: a
    /// value that depends on the job and the current revision, so stale
    /// caches are visibly wrong.
    fn toy_future(job: u32, revision: u64) -> f64 {
        1.0 + (job as f64 * 1.37 + revision as f64 * 0.61).sin().abs() * 50.0
    }

    /// Reference model of the platform queue + naive view fill: entries
    /// with their job ids, plus per-job (d, submitted_at).
    #[derive(Default)]
    struct NaiveQueue {
        entries: Vec<u32>,
        jobs: Vec<(f64, SimTime)>,
    }

    impl NaiveQueue {
        fn view(&self, skip: usize, cap: usize, now: SimTime, revision: u64) -> Vec<QueuedJobView> {
            let mut seen = vec![false; self.jobs.len()];
            let mut out = Vec::new();
            for &job in self.entries.iter().skip(skip).take(cap) {
                if seen[job as usize] {
                    continue;
                }
                seen[job as usize] = true;
                let (d, submitted) = self.jobs[job as usize];
                out.push(QueuedJobView {
                    size_units: d,
                    ett: (now - submitted).as_tu() + toy_future(job, revision),
                });
            }
            out
        }
    }

    #[test]
    fn empty_and_unallocated_classes_price_to_zero() {
        let agg = QueueAggregates::new();
        let p = agg.pricer(CLASS, 0, 256, SimTime::new(5.0));
        assert!(p.is_empty());
        assert_eq!(p.delay_cost(&RewardFn::paper_time_based(), 3.0), 0.0);
        assert_eq!(p.delay_cost(&RewardFn::paper_throughput_based(), 3.0), 0.0);
    }

    #[test]
    fn time_based_window_sum_matches_walk() {
        let mut agg = QueueAggregates::new();
        for i in 0..5u32 {
            agg.on_enqueue(CLASS, i, 5.0, SimTime::ZERO, 1);
        }
        let p = agg.pricer(CLASS, 0, 256, SimTime::new(1.0));
        assert_eq!(p.window_len(), 5);
        // 5 jobs × 5 units × rpenalty 15 × delay 2.
        assert!((p.delay_cost(&RewardFn::paper_time_based(), 2.0) - 750.0).abs() < 1e-9);
    }

    #[test]
    fn skip_and_cap_are_entry_windows_not_job_windows() {
        let mut agg = QueueAggregates::new();
        // Job 0: 3 shards, job 1: 2 shards, job 2: 1 shard.
        agg.on_enqueue(CLASS, 0, 1.0, SimTime::ZERO, 3);
        agg.on_enqueue(CLASS, 1, 10.0, SimTime::ZERO, 2);
        agg.on_enqueue(CLASS, 2, 100.0, SimTime::ZERO, 1);
        let now = SimTime::new(1.0);
        // Window [0, 3): job 0 only.
        assert_eq!(agg.pricer(CLASS, 0, 3, now).sum_d(), 1.0);
        // Window [2, 4): tail of job 0 + head of job 1.
        assert_eq!(agg.pricer(CLASS, 2, 2, now).sum_d(), 11.0);
        // Window [3, 9): jobs 1 and 2.
        assert_eq!(agg.pricer(CLASS, 3, 6, now).sum_d(), 110.0);
        // Skip past everything: empty.
        assert!(agg.pricer(CLASS, 6, 256, now).is_empty());
        // Pop two entries of job 0: the window shifts with the cursor.
        agg.on_pop(CLASS);
        agg.on_pop(CLASS);
        assert_eq!(agg.entries(CLASS), 4);
        assert_eq!(agg.pricer(CLASS, 0, 1, now).sum_d(), 1.0);
        assert_eq!(agg.pricer(CLASS, 1, 1, now).sum_d(), 10.0);
    }

    #[test]
    fn fully_popped_jobs_leave_the_mirror() {
        let mut agg = QueueAggregates::new();
        agg.on_enqueue(CLASS, 0, 2.0, SimTime::ZERO, 2);
        agg.on_enqueue(CLASS, 1, 3.0, SimTime::ZERO, 1);
        agg.on_pop(CLASS);
        agg.on_pop(CLASS);
        let p = agg.pricer(CLASS, 0, 256, SimTime::new(1.0));
        assert_eq!(p.window_len(), 1);
        assert_eq!(p.sum_d(), 3.0);
        agg.on_pop(CLASS);
        assert_eq!(agg.entries(CLASS), 0);
        assert!(agg.pricer(CLASS, 0, 256, SimTime::new(1.0)).is_empty());
    }

    #[test]
    fn revalidation_refreshes_only_stale_window_terms() {
        let mut agg = QueueAggregates::new();
        for i in 0..4u32 {
            agg.on_enqueue(CLASS, i, 1.0, SimTime::ZERO, 1);
        }
        let mut calls = Vec::new();
        agg.revalidate_window(CLASS, 0, 2, 1, |job| {
            calls.push(job);
            toy_future(job, 1)
        });
        assert_eq!(calls, vec![0, 1], "only the window is refreshed");
        calls.clear();
        agg.revalidate_window(CLASS, 0, 2, 1, |job| {
            calls.push(job);
            toy_future(job, 1)
        });
        assert!(calls.is_empty(), "fresh terms are skipped");
        agg.revalidate_window(CLASS, 0, 4, 2, |job| {
            calls.push(job);
            toy_future(job, 2)
        });
        assert_eq!(calls, vec![0, 1, 2, 3], "a new revision refreshes everything in view");
    }

    proptest! {
        /// The incremental aggregate equals the naive skip/cap/dedup
        /// view walk across all four reward schemes and arbitrary
        /// enqueue/pop/observe interleavings: bit-for-bit for the
        /// ETT-dependent schemes, within the documented relative ulp
        /// bound for the factored time-based sum.
        ///
        /// Each op is a `(selector, d, shards, skip, delay)` tuple (the
        /// offline proptest stand-in has no strategy combinators):
        /// selector 0–2 enqueues a fresh job, 3–5 pops one entry, 6
        /// bumps the estimator revision, 7–8 prices and compares.
        #[test]
        fn prop_aggregate_matches_naive_walk(
            ops in proptest::collection::vec(
                (0u8..9, 0.5f64..20.0, 1u32..4, 0usize..12, 0.0f64..10.0),
                1..60,
            ),
            small_cap in 0u8..2,
        ) {
            let cap = if small_cap == 0 { 4usize } else { 256 };
            for reward in reward_schemes() {
                let mut agg = QueueAggregates::new();
                let mut naive = NaiveQueue::default();
                let mut revision = 1u64;
                let mut now = 0.0f64;
                for &(sel, d, shards, skip, delay) in &ops {
                    now += 0.25;
                    let t = SimTime::new(now);
                    match sel {
                        0..=2 => {
                            let job = naive.jobs.len() as u32;
                            naive.jobs.push((d, t));
                            naive.entries.extend(std::iter::repeat_n(job, shards as usize));
                            agg.on_enqueue(CLASS, job, d, t, shards);
                        }
                        3..=5 => {
                            if !naive.entries.is_empty() {
                                naive.entries.remove(0);
                                agg.on_pop(CLASS);
                            }
                        }
                        6 => revision += 1,
                        _ => {
                            prop_assert_eq!(agg.entries(CLASS), naive.entries.len());
                            if reward.depends_on_ett() {
                                agg.revalidate_window(CLASS, skip, cap, revision, |job| {
                                    toy_future(job, revision)
                                });
                            }
                            let view = naive.view(skip, cap, t, revision);
                            let walk = delay_cost(&reward, &view, delay);
                            let p = agg.pricer(CLASS, skip, cap, t);
                            prop_assert_eq!(p.window_len(), view.len());
                            let fast = p.delay_cost(&reward, delay);
                            if reward.depends_on_ett() {
                                prop_assert!(
                                    fast.to_bits() == walk.to_bits(),
                                    "{}: {} vs {}", reward.name(), fast, walk
                                );
                            } else {
                                prop_assert!(
                                    (fast - walk).abs() <= 1e-9 * walk.abs().max(1.0),
                                    "time-based drift: {} vs {}", fast, walk
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
