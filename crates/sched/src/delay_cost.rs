//! Eq. 1 — the delay cost of postponing a queue.
//!
//! `DC(delay) = Σ_{j ∈ Q} [ R(ETT(j), recs_j) − R(ETT(j) + delay, recs_j) ]`
//!
//! i.e. the total reward the platform forfeits if everything currently in
//! a queue slips by `delay` time units. The predictive scaling policy
//! hires a public worker exactly when this exceeds the hire cost.

use scan_workload::reward::RewardFn;

/// What Eq. 1 needs to know about one queued job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedJobView {
    /// Job input size in units (the reward's `d`; proportional to records).
    pub size_units: f64,
    /// Current `ETT(j)` estimate, TU.
    pub ett: f64,
}

/// Eq. 1: total reward lost by delaying every job in `queue` by `delay`.
///
/// # Panics
/// Panics on negative `delay`.
pub fn delay_cost(reward: &RewardFn, queue: &[QueuedJobView], delay: f64) -> f64 {
    assert!(delay >= 0.0, "delay must be non-negative");
    queue.iter().map(|j| reward.delay_loss(j.size_units, j.ett.max(0.0), delay)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn q(entries: &[(f64, f64)]) -> Vec<QueuedJobView> {
        entries.iter().map(|&(size_units, ett)| QueuedJobView { size_units, ett }).collect()
    }

    #[test]
    fn empty_queue_costs_nothing() {
        let r = RewardFn::paper_time_based();
        assert_eq!(delay_cost(&r, &[], 5.0), 0.0);
    }

    #[test]
    fn time_based_cost_is_size_weighted_linear() {
        let r = RewardFn::paper_time_based();
        let queue = q(&[(5.0, 10.0), (2.0, 30.0)]);
        // (5 + 2) × 15 × delay — ETT does not matter for the linear scheme.
        let dc = delay_cost(&r, &queue, 2.0);
        assert!((dc - 7.0 * 15.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_cost_weights_fast_jobs_more() {
        let r = RewardFn::paper_throughput_based();
        let fast_queue = q(&[(5.0, 10.0)]);
        let slow_queue = q(&[(5.0, 100.0)]);
        assert!(delay_cost(&r, &fast_queue, 1.0) > delay_cost(&r, &slow_queue, 1.0));
    }

    #[test]
    fn zero_delay_zero_cost() {
        for r in [RewardFn::paper_time_based(), RewardFn::paper_throughput_based()] {
            let queue = q(&[(5.0, 10.0), (3.0, 20.0)]);
            assert!(delay_cost(&r, &queue, 0.0).abs() < 1e-9);
        }
    }

    proptest! {
        /// Delay cost is non-negative and monotone in delay for both
        /// reward schemes.
        #[test]
        fn prop_monotone(
            entries in proptest::collection::vec((1.0f64..10.0, 0.5f64..100.0), 0..20),
            d1 in 0.0f64..20.0,
            d2 in 0.0f64..20.0,
        ) {
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            for r in [RewardFn::paper_time_based(), RewardFn::paper_throughput_based()] {
                let queue = q(&entries);
                let a = delay_cost(&r, &queue, lo);
                let b = delay_cost(&r, &queue, hi);
                prop_assert!(a >= -1e-9);
                prop_assert!(b >= a - 1e-9, "cost must grow with delay");
            }
        }

        /// Delay cost is additive over queue partitions.
        #[test]
        fn prop_additive(
            entries in proptest::collection::vec((1.0f64..10.0, 0.5f64..100.0), 2..20),
            split in 1usize..19,
            delay in 0.0f64..10.0,
        ) {
            let split = split.min(entries.len() - 1);
            let r = RewardFn::paper_time_based();
            let all = q(&entries);
            let (a, b) = all.split_at(split);
            let whole = delay_cost(&r, &all, delay);
            let parts = delay_cost(&r, a, delay) + delay_cost(&r, b, delay);
            prop_assert!((whole - parts).abs() < 1e-6);
        }
    }
}
