//! The paper's future-work extension (§VI): "we plan to adopt learning
//! algorithms to guide the Scheduler."
//!
//! An ε-greedy multi-armed bandit over the candidate-plan spectrum: each
//! completed pipeline run reports its realised profit back to the arm that
//! produced it; with probability ε the planner explores a random arm,
//! otherwise it exploits the best empirical mean. The ablation bench
//! compares this against the published policies.

use crate::plan::ExecutionPlan;
use scan_sim::SimRng;

/// An ε-greedy bandit over execution plans.
#[derive(Debug, Clone)]
pub struct EpsilonGreedyPlanner {
    arms: Vec<ExecutionPlan>,
    /// Empirical mean profit per arm.
    means: Vec<f64>,
    pulls: Vec<u64>,
    epsilon: f64,
}

impl EpsilonGreedyPlanner {
    /// Creates the bandit over a set of candidate plans.
    ///
    /// # Panics
    /// Panics on an empty arm set or ε outside `[0, 1]`.
    pub fn new(arms: Vec<ExecutionPlan>, epsilon: f64) -> Self {
        assert!(!arms.is_empty(), "the bandit needs at least one arm");
        assert!((0.0..=1.0).contains(&epsilon));
        let n = arms.len();
        EpsilonGreedyPlanner { arms, means: vec![0.0; n], pulls: vec![0; n], epsilon }
    }

    /// Creates the bandit warm-started with model-based prior estimates of
    /// each arm's profit (each prior counts as one pull). The analytic
    /// model supplies the starting ranking; online feedback corrects it —
    /// this avoids paying full price to explore arms the model already
    /// knows are terrible.
    ///
    /// # Panics
    /// Panics if `priors` and `arms` have different lengths, on an empty
    /// arm set, or ε outside `[0, 1]`.
    pub fn with_priors(arms: Vec<ExecutionPlan>, priors: Vec<f64>, epsilon: f64) -> Self {
        assert_eq!(arms.len(), priors.len(), "one prior per arm");
        assert!(!arms.is_empty(), "the bandit needs at least one arm");
        assert!((0.0..=1.0).contains(&epsilon));
        assert!(priors.iter().all(|p| p.is_finite()));
        let n = arms.len();
        EpsilonGreedyPlanner { arms, means: priors, pulls: vec![1; n], epsilon }
    }

    /// Number of arms.
    pub fn n_arms(&self) -> usize {
        self.arms.len()
    }

    /// Chooses an arm; returns its index and plan. Unpulled arms are
    /// tried first (optimistic initialisation), then ε-greedy.
    pub fn select(&self, rng: &mut SimRng) -> (usize, ExecutionPlan) {
        if let Some(idx) = self.pulls.iter().position(|&p| p == 0) {
            return (idx, self.arms[idx].clone());
        }
        let idx = if rng.uniform01() < self.epsilon {
            rng.uniform_usize(0, self.arms.len() - 1)
        } else {
            self.best_arm()
        };
        (idx, self.arms[idx].clone())
    }

    /// Reports the realised profit of a run executed under arm `idx`.
    pub fn update(&mut self, idx: usize, profit: f64) {
        assert!(profit.is_finite());
        self.pulls[idx] += 1;
        let n = self.pulls[idx] as f64;
        self.means[idx] += (profit - self.means[idx]) / n;
    }

    /// The empirically-best arm index.
    pub fn best_arm(&self) -> usize {
        self.means
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty arms")
    }

    /// Empirical mean of an arm.
    pub fn mean(&self, idx: usize) -> f64 {
        self.means[idx]
    }

    /// The plan behind an arm.
    pub fn arm_plan(&self, idx: usize) -> &ExecutionPlan {
        &self.arms[idx]
    }

    /// The plan of the empirically-best arm.
    pub fn best_plan(&self) -> &ExecutionPlan {
        &self.arms[self.best_arm()]
    }

    /// Pull count of an arm.
    pub fn pulls(&self, idx: usize) -> u64 {
        self.pulls[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::candidate_plans;
    use scan_workload::gatk::PipelineModel;

    fn planner(epsilon: f64) -> EpsilonGreedyPlanner {
        let arms = candidate_plans(&PipelineModel::paper(), 5.0);
        EpsilonGreedyPlanner::new(arms, epsilon)
    }

    #[test]
    fn explores_every_arm_first() {
        let mut p = planner(0.0);
        let mut rng = SimRng::from_seed_u64(1);
        let n = p.n_arms();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let (idx, _) = p.select(&mut rng);
            seen.insert(idx);
            p.update(idx, 1.0);
        }
        assert_eq!(seen.len(), n, "every arm must be initialised");
    }

    #[test]
    fn exploits_the_best_arm() {
        let mut p = planner(0.0); // pure exploitation after init
        let mut rng = SimRng::from_seed_u64(2);
        let n = p.n_arms();
        // Arm 2 pays 100, everything else 1.
        for _ in 0..n {
            let (idx, _) = p.select(&mut rng);
            p.update(idx, if idx == 2 { 100.0 } else { 1.0 });
        }
        for _ in 0..50 {
            let (idx, _) = p.select(&mut rng);
            assert_eq!(idx, 2);
            p.update(idx, 100.0);
        }
        assert_eq!(p.best_arm(), 2);
        assert!(p.pulls(2) >= 50);
    }

    #[test]
    fn epsilon_forces_exploration() {
        let mut p = planner(0.5);
        let mut rng = SimRng::from_seed_u64(3);
        let n = p.n_arms();
        for _ in 0..n {
            let (idx, _) = p.select(&mut rng);
            p.update(idx, if idx == 0 { 100.0 } else { 1.0 });
        }
        let mut non_best = 0;
        for _ in 0..400 {
            let (idx, _) = p.select(&mut rng);
            if idx != 0 {
                non_best += 1;
            }
            p.update(idx, if idx == 0 { 100.0 } else { 1.0 });
        }
        // ε = 0.5 with many arms → roughly half the pulls explore.
        assert!(non_best > 100, "exploration count {non_best}");
    }

    #[test]
    fn running_mean_is_exact() {
        let mut p = planner(0.0);
        p.update(0, 10.0);
        p.update(0, 20.0);
        p.update(0, 30.0);
        assert!((p.mean(0) - 20.0).abs() < 1e-12);
        assert_eq!(p.pulls(0), 3);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_arms_rejected() {
        EpsilonGreedyPlanner::new(vec![], 0.1);
    }

    #[test]
    fn priors_seed_the_ranking() {
        let arms = candidate_plans(&PipelineModel::paper(), 5.0);
        let mut priors = vec![0.0; arms.len()];
        priors[3] = 500.0;
        let mut p = EpsilonGreedyPlanner::with_priors(arms, priors, 0.0);
        let mut rng = SimRng::from_seed_u64(4);
        // No zero-pull arms, so pure exploitation starts at the prior's
        // favourite immediately.
        let (idx, _) = p.select(&mut rng);
        assert_eq!(idx, 3);
        // Reality disagrees: arm 3 actually loses money; feedback demotes
        // it.
        for _ in 0..30 {
            let (idx, _) = p.select(&mut rng);
            p.update(idx, if idx == 3 { -100.0 } else { 50.0 });
        }
        assert_ne!(p.best_arm(), 3, "online feedback must override a bad prior");
    }

    #[test]
    #[should_panic(expected = "one prior per arm")]
    fn mismatched_priors_rejected() {
        let arms = candidate_plans(&PipelineModel::paper(), 5.0);
        EpsilonGreedyPlanner::with_priors(arms, vec![1.0], 0.1);
    }
}
