//! Chrome/Perfetto `trace_event` JSON export.
//!
//! The produced document loads directly in `ui.perfetto.dev` (or
//! `chrome://tracing`): one process per tenant, one thread track per
//! worker VM carrying its boot/reshape and subtask slices, a
//! `queue_depth` counter track per tenant, and each completed job as a
//! nestable async span with its derived segments nested inside.
//!
//! Layout (all times µs = TU × 1e6, rendered through `f64::Display` so
//! equal inputs always produce byte-equal output):
//!
//! - `M` metadata rows name every process and thread track.
//! - `X` complete slices: `cat:"boot"` (hire→boot, reshape→boot) and
//!   `cat:"subtask"` (dispatch, `dur` = `busy_tu`) on `tid = vm + 16`.
//! - `C` counter rows: `queue_depth` per tenant.
//! - `b`/`e` nestable async rows: `cat:"job"` spanning
//!   `[submitted, completed]` with `cat:"segment"` children, correlated
//!   by `id = (tenant << 32) | job` in hex.

use crate::span::SpanSet;
use scan_tracestore::{tier_label, Column, EventKind, Table, TraceStore};
use std::fmt::Write as _;

/// Offset keeping VM thread tracks clear of the reserved/queue tids.
const VM_TID_OFFSET: u64 = 16;

fn u32s<'a>(table: &'a Table, name: &str) -> &'a [u32] {
    match table.column(name) {
        Some(Column::U32(v)) => v,
        _ => &[],
    }
}

fn f64s<'a>(table: &'a Table, name: &str) -> &'a [f64] {
    match table.column(name) {
        Some(Column::F64(v)) => v,
        _ => &[],
    }
}

fn dict_labels(table: &Table, name: &str) -> Vec<String> {
    match table.column(name) {
        Some(Column::Dict { codes, dict }) => {
            codes.iter().map(|&c| dict.label(c).to_string()).collect()
        }
        _ => Vec::new(),
    }
}

/// Escapes a string for a JSON literal (control chars, quotes, slashes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// µs timestamp from a TU time, via shortest round-trip `Display`.
fn us(t_tu: f64) -> String {
    format!("{}", t_tu * 1e6)
}

struct EventWriter {
    out: String,
    first: bool,
}

impl EventWriter {
    fn new() -> EventWriter {
        EventWriter { out: String::from("{\"traceEvents\":["), first: true }
    }

    /// Appends one pre-rendered event object body (without braces).
    fn push(&mut self, body: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('{');
        self.out.push_str(body);
        self.out.push('}');
    }

    fn finish(mut self) -> String {
        self.out.push_str("],\"displayTimeUnit\":\"ms\"}");
        self.out
    }
}

/// Renders the trace-event JSON for a single-run store and its derived
/// spans (the pair a [`Recorder`](crate::observer::Recorder) produces).
pub fn export(store: &TraceStore, spans: &SpanSet) -> String {
    let mut w = EventWriter::new();

    // --- Track metadata -------------------------------------------------
    // Tenants present anywhere in the store or span set, ascending.
    let mut tenants: Vec<u32> = Vec::new();
    for table in store.tables() {
        for &t in table.tenant() {
            if let Err(at) = tenants.binary_search(&t) {
                tenants.insert(at, t);
            }
        }
    }
    for job in &spans.jobs {
        if let Err(at) = tenants.binary_search(&job.tenant) {
            tenants.insert(at, job.tenant);
        }
    }
    for &tenant in &tenants {
        w.push(&format!(
            "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{tenant},\
             \"args\":{{\"name\":\"tenant {tenant}\"}}"
        ));
    }
    // One thread track per hired VM, named with its (first) tier.
    let hired = store.table(EventKind::VmHired);
    let (h_vm, h_tier) = (u32s(hired, "vm"), dict_labels(hired, "tier"));
    let mut named: Vec<(u32, u32)> = Vec::new();
    for i in 0..hired.rows() {
        let key = (hired.tenant()[i], h_vm[i]);
        if !named.contains(&key) {
            named.push(key);
            w.push(&format!(
                "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"vm {} ({})\"}}",
                key.0,
                u64::from(key.1) + VM_TID_OFFSET,
                key.1,
                escape(&h_tier[i]),
            ));
        }
    }

    // --- Boot / reshape slices ------------------------------------------
    // Pair each hire or reshape with the next boot of the same VM.
    let reshaped = store.table(EventKind::VmReshaped);
    let (r_vm, r_tier) = (u32s(reshaped, "vm"), dict_labels(reshaped, "tier"));
    let booted = store.table(EventKind::VmBooted);
    let b_vm = u32s(booted, "vm");
    let mut starts: Vec<(u32, u64, u8, u32)> = Vec::new();
    for i in 0..hired.rows() {
        starts.push((hired.tenant()[i], hired.t_bits()[i], 0, i as u32));
    }
    for i in 0..reshaped.rows() {
        starts.push((reshaped.tenant()[i], reshaped.t_bits()[i], 1, i as u32));
    }
    starts.sort_unstable();
    let mut open: Vec<((u32, u32), (f64, String))> = Vec::new();
    let mut boots: Vec<(u32, f64, f64, String, u32)> = Vec::new();
    let mut bi = 0usize;
    // Replay starts and boots in time order per tenant (single-run
    // stores are time-monotone per tenant, and boot always follows its
    // start strictly later or at the same instant).
    for (tenant, t_bits, which, i) in starts {
        let i = i as usize;
        let (vm, name) = match which {
            0 => (h_vm[i], format!("boot ({})", escape(&h_tier[i]))),
            _ => (r_vm[i], format!("reshape ({})", escape(&r_tier[i]))),
        };
        // Close any boots that completed before this start.
        while bi < booted.rows() && booted.t_bits()[bi] <= t_bits {
            let key = (booted.tenant()[bi], b_vm[bi]);
            if let Some(at) = open.iter().position(|(k, _)| *k == key) {
                let ((ten, vmid), (start, label)) = open.remove(at);
                boots.push((ten, start, booted.time_tu(bi), label, vmid));
            }
            bi += 1;
        }
        if let Some(at) = open.iter().position(|(k, _)| *k == (tenant, vm)) {
            open.remove(at);
        }
        open.push(((tenant, vm), (f64::from_bits(t_bits), name)));
    }
    while bi < booted.rows() {
        let key = (booted.tenant()[bi], b_vm[bi]);
        if let Some(at) = open.iter().position(|(k, _)| *k == key) {
            let ((ten, vmid), (start, label)) = open.remove(at);
            boots.push((ten, start, booted.time_tu(bi), label, vmid));
        }
        bi += 1;
    }
    boots.sort_by_key(|b| (b.0, b.1.to_bits(), b.4));
    for (tenant, start, end, label, vm) in boots {
        w.push(&format!(
            "\"name\":\"{label}\",\"cat\":\"boot\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{tenant},\"tid\":{}",
            us(start),
            us(end - start),
            u64::from(vm) + VM_TID_OFFSET,
        ));
    }

    // --- Subtask slices --------------------------------------------------
    let disp = store.table(EventKind::SubtaskDispatched);
    let (d_job, d_stage) = (u32s(disp, "job"), u32s(disp, "stage"));
    let (d_vm, d_cores) = (u32s(disp, "vm"), u32s(disp, "cores"));
    let d_busy = f64s(disp, "busy_tu");
    for i in 0..disp.rows() {
        w.push(&format!(
            "\"name\":\"job {}/s{}\",\"cat\":\"subtask\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{{\"cores\":{}}}",
            d_job[i],
            d_stage[i],
            us(disp.time_tu(i)),
            us(d_busy[i]),
            disp.tenant()[i],
            u64::from(d_vm[i]) + VM_TID_OFFSET,
            d_cores[i],
        ));
    }

    // --- Queue-depth counters -------------------------------------------
    let depth = store.table(EventKind::QueueDepth);
    let d_val = u32s(depth, "depth");
    for (i, &d) in d_val.iter().enumerate() {
        w.push(&format!(
            "\"name\":\"queue_depth\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\
             \"args\":{{\"depth\":{}}}",
            us(depth.time_tu(i)),
            depth.tenant()[i],
            d,
        ));
    }

    // --- Job spans with nested segments ---------------------------------
    for job in &spans.jobs {
        let id = (u64::from(job.tenant) << 32) | u64::from(job.job);
        let common = format!("\"cat\":\"job\",\"id\":\"0x{id:x}\",\"pid\":{}", job.tenant);
        w.push(&format!(
            "\"name\":\"job {}\",\"ph\":\"b\",\"ts\":{},{common},\
             \"args\":{{\"latency_tu\":{},\"stages\":{}}}",
            job.job,
            us(job.submitted_tu),
            job.latency_tu,
            job.stages,
        ));
        for seg in &job.segments {
            let seg_common =
                format!("\"cat\":\"segment\",\"id\":\"0x{id:x}\",\"pid\":{}", job.tenant);
            let tier = if seg.tier == crate::span::NO_TIER {
                String::from("null")
            } else {
                format!("\"{}\"", tier_label(seg.tier))
            };
            w.push(&format!(
                "\"name\":\"{}\",\"ph\":\"b\",\"ts\":{},{seg_common},\
                 \"args\":{{\"tier\":{tier}}}",
                seg.kind.name(),
                us(seg.start_tu),
            ));
            w.push(&format!(
                "\"name\":\"{}\",\"ph\":\"e\",\"ts\":{},{seg_common}",
                seg.kind.name(),
                us(seg.end_tu),
            ));
        }
        w.push(&format!(
            "\"name\":\"job {}\",\"ph\":\"e\",\"ts\":{},{common}",
            job.job,
            us(job.completed_tu),
        ));
    }

    w.finish()
}

/// A minimal JSON reader used to schema-validate exports in tests (and
/// by anything else needing to inspect the document without a JSON
/// dependency). Accepts strict JSON; numbers parse through `f64`.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Member lookup on objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload, if this is a number.
        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    /// Parses a complete JSON document.
    pub fn parse(src: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at {}", p.pos));
        }
        Ok(v)
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(_) => self.number(),
                None => Err(String::from("unexpected end of input")),
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while matches!(
                self.bytes.get(self.pos),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| String::from("non-utf8 number"))?;
            text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number at {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    None => return Err(String::from("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.bytes.get(self.pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| String::from("bad \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| String::from("bad \\u escape"))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| String::from("bad \\u scalar"))?,
                                );
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(&b) => {
                        // Multi-byte UTF-8 passes through unchanged.
                        let ch_len = match b {
                            0x00..=0x7f => 1,
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        let chunk = self
                            .bytes
                            .get(self.pos..self.pos + ch_len)
                            .and_then(|c| std::str::from_utf8(c).ok())
                            .ok_or_else(|| String::from("bad utf8 in string"))?;
                        out.push_str(chunk);
                        self.pos += ch_len;
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut members = Vec::new();
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b'}') {
                self.pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let v = self.value()?;
                members.push((key, v));
                self.skip_ws();
                match self.bytes.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::{parse, Value};
    use super::*;
    use crate::observer::Recorder;
    use scan_sim::{Observer, SimTime, TraceEvent};

    fn recording() -> Recorder {
        let mut rec = Recorder::default();
        let events: Vec<(f64, TraceEvent)> = vec![
            (0.25, TraceEvent::VmHired { vm: 0, tier: 0, cores: 2 }),
            (0.5, TraceEvent::QueueDepthSampled { depth: 1 }),
            (1.0, TraceEvent::JobArrived { job: 0, size_units: 4.0, submitted_tu: 0.75 }),
            (1.0, TraceEvent::JobStageAdvanced { job: 0, stage: 0, shards: 1, cores: 1 }),
            (1.25, TraceEvent::VmBooted { vm: 0, cores: 2 }),
            (
                1.25,
                TraceEvent::SubtaskDispatched {
                    job: 0,
                    stage: 0,
                    vm: 0,
                    cores: 1,
                    waited_tu: 0.25,
                    busy_tu: 1.5,
                },
            ),
            (
                2.75,
                TraceEvent::JobCompleted { job: 0, latency_tu: 2.0, reward: 4.0, core_stages: 1.0 },
            ),
        ];
        for (t, e) in events {
            rec.on_event(SimTime::new(t), &e);
        }
        rec
    }

    /// The export is valid JSON with the documented envelope, every
    /// event carries the mandatory trace_event fields, and the async
    /// begin/end rows balance per id.
    #[test]
    fn export_is_schema_valid_trace_event_json() {
        let rec = recording();
        let spans = rec.spans.clone().into_spans();
        let doc = export(&rec.store, &spans);
        let parsed = parse(&doc).expect("export must be well-formed JSON");
        assert_eq!(parsed.get("displayTimeUnit").and_then(Value::as_str), Some("ms"), "envelope");
        let events = parsed.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");
        assert!(!events.is_empty());
        let mut balance = 0i64;
        let mut saw = [false; 5]; // M, X, C, b, e
        for e in events {
            let ph = e.get("ph").and_then(Value::as_str).expect("every event has ph");
            assert!(e.get("name").and_then(Value::as_str).is_some(), "name");
            assert!(e.get("pid").and_then(Value::as_num).is_some(), "pid");
            match ph {
                "M" => saw[0] = true,
                "X" => {
                    saw[1] = true;
                    assert!(e.get("ts").and_then(Value::as_num).is_some());
                    assert!(e.get("dur").and_then(Value::as_num).unwrap_or(-1.0) >= 0.0);
                    assert!(e.get("tid").and_then(Value::as_num).is_some());
                }
                "C" => {
                    saw[2] = true;
                    assert!(e.get("args").is_some());
                }
                "b" => {
                    saw[3] = true;
                    balance += 1;
                    assert!(e.get("id").and_then(Value::as_str).is_some());
                }
                "e" => {
                    saw[4] = true;
                    balance -= 1;
                    assert!(e.get("id").and_then(Value::as_str).is_some());
                }
                other => panic!("unexpected phase {other:?}"),
            }
        }
        assert!(saw.iter().all(|&s| s), "all phases present: {saw:?}");
        assert_eq!(balance, 0, "async begin/end rows balance");
    }

    /// Track layout: the VM thread sits at `vm + 16`, subtask slices
    /// land on it, and the boot slice covers hire→boot.
    #[test]
    fn export_lays_out_tracks_per_vm_and_tenant() {
        let rec = recording();
        let spans = rec.spans.clone().into_spans();
        let doc = export(&rec.store, &spans);
        let parsed = parse(&doc).expect("valid JSON");
        let events = parsed.get("traceEvents").and_then(Value::as_arr).unwrap();
        let thread_name = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .expect("thread_name metadata");
        assert_eq!(thread_name.get("tid").and_then(Value::as_num), Some(16.0));
        assert_eq!(
            thread_name.get("args").and_then(|a| a.get("name")).and_then(Value::as_str),
            Some("vm 0 (private)")
        );
        let boot = events
            .iter()
            .find(|e| e.get("cat").and_then(Value::as_str) == Some("boot"))
            .expect("boot slice");
        assert_eq!(boot.get("ts").and_then(Value::as_num), Some(250000.0));
        assert_eq!(boot.get("dur").and_then(Value::as_num), Some(1000000.0));
        let seg_names: Vec<&str> = events
            .iter()
            .filter(|e| {
                e.get("cat").and_then(Value::as_str) == Some("segment")
                    && e.get("ph").and_then(Value::as_str) == Some("b")
            })
            .filter_map(|e| e.get("name").and_then(Value::as_str))
            .collect();
        // Zero-width queue waits on both sides of the boot are elided:
        // the job defers 0.75→1.0, waits for the boot 1.0→1.25, then
        // runs 1.25→2.75 with no fan-in tail.
        assert_eq!(seg_names, ["admission_deferred", "boot_wait", "service"]);
    }

    #[test]
    fn json_reader_handles_escapes_and_rejects_garbage() {
        let v = parse(r#"{"a":[1,-2.5e3,true,null],"b":"x\n\"yA"}"#).expect("valid");
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x\n\"yA"));
        assert_eq!(v.get("a").and_then(Value::as_arr).map(<[Value]>::len), Some(4));
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
