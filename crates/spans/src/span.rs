//! The derived artefacts: typed segments, per-job span trees, and the
//! mergeable [`SpanSet`] a whole session or fleet produces.

use crate::schema::{SegmentKind, ALL_SEGMENTS};
use scan_sim::Merge;

/// Tier tag for segments with no attributable worker (queue wait,
/// admission deferral).
pub const NO_TIER: u32 = u32::MAX;

/// One attributed slice of a job's end-to-end latency.
///
/// Segments are closed intervals over simulation time; within one job
/// consecutive segments share their endpoints bit-exactly, which is what
/// makes the decomposition a partition rather than an approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// What the time was spent on.
    pub kind: SegmentKind,
    /// Tier of the attributed worker ([`NO_TIER`] when no worker is
    /// responsible, e.g. queue wait).
    pub tier: u32,
    /// Segment start, TU.
    pub start_tu: f64,
    /// Segment end, TU.
    pub end_tu: f64,
}

impl Segment {
    /// The segment's extent in TU.
    pub fn duration_tu(&self) -> f64 {
        self.end_tu - self.start_tu
    }
}

/// One completed job's causal timeline: its latency decomposed into an
/// exhaustive, non-overlapping sequence of [`Segment`]s.
///
/// # Conservation invariant
///
/// The segments *tile* `[submitted_tu, completed_tu]`: the first starts
/// at the submission time, every next segment starts bit-exactly where
/// the previous one ended, and the last ends at the completion time.
/// Because the tiling telescopes, the segments' total extent is exactly
/// `completed_tu − submitted_tu` — the same single `f64` subtraction the
/// platform uses to compute `job_completed.latency_tu` — so the total
/// equals the reported latency *bit-exactly*, not merely approximately.
/// [`JobSpans::conservation_ok`] checks all of it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpans {
    /// Owning tenant (0 for solo sessions).
    pub tenant: u32,
    /// Job id (dense per tenant).
    pub job: u32,
    /// When the job was submitted, TU.
    pub submitted_tu: f64,
    /// When the job completed, TU.
    pub completed_tu: f64,
    /// The latency the platform reported in `job_completed`, TU.
    pub latency_tu: f64,
    /// Reward the job earned, CU.
    pub reward: f64,
    /// Pipeline stages the job ran.
    pub stages: u32,
    /// The decomposition, in time order.
    pub segments: Vec<Segment>,
}

impl JobSpans {
    /// The segments' total extent: `completed_tu − submitted_tu` via the
    /// telescoped tiling (bit-equal to `latency_tu` by construction —
    /// summing per-segment durations instead would reintroduce `f64`
    /// rounding, which is exactly what the tiling avoids).
    pub fn span_tu(&self) -> f64 {
        self.completed_tu - self.submitted_tu
    }

    /// Verifies the conservation invariant: non-empty tiling of
    /// `[submitted_tu, completed_tu]` with bit-exact adjacency, ordered
    /// endpoints, and a telescoped total bit-equal to `latency_tu`.
    pub fn conservation_ok(&self) -> bool {
        let Some(first) = self.segments.first() else {
            return false;
        };
        let Some(last) = self.segments.last() else {
            return false;
        };
        if first.start_tu.to_bits() != self.submitted_tu.to_bits()
            || last.end_tu.to_bits() != self.completed_tu.to_bits()
        {
            return false;
        }
        for w in self.segments.windows(2) {
            if w[0].end_tu.to_bits() != w[1].start_tu.to_bits() {
                return false;
            }
        }
        let well_formed = |s: &Segment| {
            matches!(
                s.end_tu.partial_cmp(&s.start_tu),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            )
        };
        if !self.segments.iter().all(well_formed) {
            return false;
        }
        self.span_tu().to_bits() == self.latency_tu.to_bits()
    }

    /// Per-kind duration totals, in [`ALL_SEGMENTS`] order (plain
    /// sequential sums — display/aggregation data, not the conservation
    /// check).
    pub fn breakdown(&self) -> [f64; ALL_SEGMENTS.len()] {
        let mut out = [0.0; ALL_SEGMENTS.len()];
        for s in &self.segments {
            out[s.kind.index()] += s.duration_tu();
        }
        out
    }
}

/// Every completed job's spans from one session — or, after merging, a
/// whole fleet replication sweep. Jobs appear in completion order within
/// a session; merged sets concatenate in the caller's merge order (the
/// `(repetition, tenant)` ordinal order when driven through
/// `run_fleet_replicated_with`), which is what makes merged span sets
/// bit-identical for any `RAYON_NUM_THREADS`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanSet {
    /// Completed jobs, in completion (then merge) order.
    pub jobs: Vec<JobSpans>,
    /// Jobs admitted but still in flight when the run ended; their time
    /// is *not* in `jobs` (the conservation invariant only covers
    /// completed jobs).
    pub in_flight: u64,
}

impl SpanSet {
    /// Indices of the `n` slowest jobs, by latency (ties broken by
    /// tenant then job id — deterministic for any merge order).
    pub fn slowest(&self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.jobs.len()).collect();
        idx.sort_by(|&a, &b| {
            let (ja, jb) = (&self.jobs[a], &self.jobs[b]);
            jb.latency_tu
                .total_cmp(&ja.latency_tu)
                .then(ja.tenant.cmp(&jb.tenant))
                .then(ja.job.cmp(&jb.job))
        });
        idx.truncate(n);
        idx
    }
}

impl Merge for SpanSet {
    /// Appends `other`'s jobs after this set's own. Determinism
    /// contract: callers merge in session-ordinal order.
    fn merge(&mut self, other: SpanSet) {
        self.jobs.extend(other.jobs);
        self.in_flight += other.in_flight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(kind: SegmentKind, start: f64, end: f64) -> Segment {
        Segment { kind, tier: NO_TIER, start_tu: start, end_tu: end }
    }

    fn job(segments: Vec<Segment>) -> JobSpans {
        let submitted = segments.first().map(|s| s.start_tu).unwrap_or(0.0);
        let completed = segments.last().map(|s| s.end_tu).unwrap_or(0.0);
        JobSpans {
            tenant: 0,
            job: 0,
            submitted_tu: submitted,
            completed_tu: completed,
            latency_tu: completed - submitted,
            reward: 0.0,
            stages: 1,
            segments,
        }
    }

    #[test]
    fn tiled_segments_conserve() {
        let j = job(vec![
            seg(SegmentKind::QueueWait, 1.0, 1.5),
            seg(SegmentKind::Service, 1.5, 3.25),
            seg(SegmentKind::FanIn, 3.25, 4.0),
        ]);
        assert!(j.conservation_ok());
        assert_eq!(j.span_tu(), 3.0);
        let b = j.breakdown();
        assert_eq!(b[SegmentKind::Service.index()], 1.75);
    }

    #[test]
    fn gaps_and_overlaps_fail_conservation() {
        let gap =
            job(vec![seg(SegmentKind::QueueWait, 1.0, 1.5), seg(SegmentKind::Service, 1.6, 3.0)]);
        assert!(!gap.conservation_ok());
        let mut wrong_latency = job(vec![seg(SegmentKind::Service, 1.0, 2.0)]);
        wrong_latency.latency_tu = 1.0000000001;
        assert!(!wrong_latency.conservation_ok());
        assert!(!job(Vec::new()).conservation_ok());
    }

    #[test]
    fn slowest_orders_by_latency_then_ids() {
        let mut set = SpanSet::default();
        for (jid, lat) in [(0u32, 2.0), (1, 5.0), (2, 5.0), (3, 1.0)] {
            let mut j = job(vec![seg(SegmentKind::Service, 0.0, lat)]);
            j.job = jid;
            set.jobs.push(j);
        }
        assert_eq!(set.slowest(3), vec![1, 2, 0]);
    }
}
