//! Incremental span derivation: an [`Observer`] that stitches the live
//! event stream into [`JobSpans`] as jobs complete, plus the
//! [`ObserverFactory`] bridges that carry span sets (and optionally a
//! [`TraceStore`] alongside) across the rayon replication boundary.
//!
//! The observer keeps O(in-flight jobs + workers) state and touches only
//! seven low-volume event kinds (arrivals, stage advances, dispatches,
//! completions and the three worker lifecycle events); the high-volume
//! kinds (`subtask_done`, `queue_depth`, `scaling_decision`) return
//! immediately, which is what keeps the ingest-path overhead small
//! (benched in `benches/spans.rs`).

use crate::schema::SegmentKind;
use crate::span::{JobSpans, Segment, SpanSet, NO_TIER};
use scan_sim::{Merge, Observer, ObserverFactory, SimTime, TraceEvent};
use scan_tracestore::TraceStore;

/// A worker's current tier and most recent boot (hire or reshape) window.
#[derive(Debug, Clone, Copy)]
struct VmRec {
    tier: u32,
    boot_start: f64,
    boot_end: f64,
    reshape: bool,
    booted: bool,
}

/// The boot window snapshotted when a dispatch becomes a stage's anchor.
#[derive(Debug, Clone, Copy)]
struct BootSnap {
    start: f64,
    end: f64,
    reshape: bool,
}

/// The stage's critical subtask: the dispatch with the longest busy span
/// (earliest dispatch wins ties, in stream order).
#[derive(Debug, Clone, Copy)]
struct Anchor {
    dispatch_t: f64,
    busy_tu: f64,
    tier: u32,
    boot: Option<BootSnap>,
}

/// One enqueued stage of an in-flight job.
#[derive(Debug, Clone, Copy)]
struct StageRec {
    enq_t: f64,
    anchor: Option<Anchor>,
}

/// One in-flight job.
#[derive(Debug, Clone)]
struct JobRec {
    submitted_tu: f64,
    arrived_t: f64,
    stages: Vec<StageRec>,
}

/// Derives [`JobSpans`] incrementally from the live trace stream of one
/// session (equivalently: one fleet tenant). The batch pass in
/// [`derive`](crate::derive()) feeds the same state machine from a stored
/// trace and produces identical output.
#[derive(Debug, Clone)]
pub struct SpanObserver {
    tenant: u32,
    vms: Vec<Option<VmRec>>,
    jobs: Vec<Option<JobRec>>,
    out: SpanSet,
}

impl Default for SpanObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanObserver {
    /// An observer for a solo session (tenant 0).
    pub fn new() -> SpanObserver {
        Self::for_tenant(0)
    }

    /// An observer stamping every derived job with `tenant`.
    pub fn for_tenant(tenant: u32) -> SpanObserver {
        SpanObserver { tenant, vms: Vec::new(), jobs: Vec::new(), out: SpanSet::default() }
    }

    /// Completed jobs so far.
    pub fn completed(&self) -> usize {
        self.out.jobs.len()
    }

    /// Finishes the observer: jobs still in flight are counted, the
    /// completed jobs' spans are returned.
    pub fn into_spans(mut self) -> SpanSet {
        self.out.in_flight += self.jobs.iter().filter(|j| j.is_some()).count() as u64;
        self.out
    }

    fn vm_slot(&mut self, vm: u64) -> &mut Option<VmRec> {
        let idx = vm as usize;
        if idx >= self.vms.len() {
            self.vms.resize(idx + 1, None);
        }
        &mut self.vms[idx]
    }

    pub(crate) fn on_vm_hired(&mut self, at: f64, vm: u64, tier: u32) {
        *self.vm_slot(vm) =
            Some(VmRec { tier, boot_start: at, boot_end: at, reshape: false, booted: false });
    }

    pub(crate) fn on_vm_reshaped(&mut self, at: f64, vm: u64, tier: u32) {
        *self.vm_slot(vm) =
            Some(VmRec { tier, boot_start: at, boot_end: at, reshape: true, booted: false });
    }

    pub(crate) fn on_vm_booted(&mut self, at: f64, vm: u64) {
        if let Some(rec) = self.vm_slot(vm) {
            rec.boot_end = at;
            rec.booted = true;
        }
    }

    pub(crate) fn on_job_arrived(&mut self, at: f64, job: u64, submitted_tu: f64) {
        let idx = job as usize;
        if idx >= self.jobs.len() {
            self.jobs.resize(idx + 1, None);
        }
        self.jobs[idx] =
            Some(JobRec { submitted_tu, arrived_t: at, stages: Vec::with_capacity(7) });
    }

    pub(crate) fn on_stage_advanced(&mut self, at: f64, job: u64) {
        if let Some(Some(rec)) = self.jobs.get_mut(job as usize) {
            rec.stages.push(StageRec { enq_t: at, anchor: None });
        }
    }

    pub(crate) fn on_dispatched(&mut self, at: f64, job: u64, stage: u32, vm: u64, busy_tu: f64) {
        let snap = match self.vms.get(vm as usize).copied().flatten() {
            Some(rec) if rec.booted => (
                rec.tier,
                Some(BootSnap { start: rec.boot_start, end: rec.boot_end, reshape: rec.reshape }),
            ),
            Some(rec) => (rec.tier, None),
            None => (NO_TIER, None),
        };
        let Some(Some(rec)) = self.jobs.get_mut(job as usize) else {
            return;
        };
        let Some(srec) = rec.stages.get_mut(stage as usize) else {
            return;
        };
        // Strictly-greater keeps the earliest dispatch on busy ties
        // (stream order is deterministic, so so is the anchor).
        let better = match &srec.anchor {
            None => true,
            Some(a) => busy_tu > a.busy_tu,
        };
        if better {
            srec.anchor = Some(Anchor { dispatch_t: at, busy_tu, tier: snap.0, boot: snap.1 });
        }
    }

    pub(crate) fn on_completed(&mut self, at: f64, job: u64, latency_tu: f64, reward: f64) {
        let Some(slot) = self.jobs.get_mut(job as usize) else {
            return;
        };
        let Some(rec) = slot.take() else {
            return;
        };
        let spans = build_job_spans(self.tenant, job as u32, &rec, at, latency_tu, reward);
        debug_assert!(spans.conservation_ok(), "segment tiling broken for job {job}");
        self.out.jobs.push(spans);
    }
}

/// Decomposes one completed job into its segment tiling (see
/// [`JobSpans`] for the invariant this construction guarantees).
fn build_job_spans(
    tenant: u32,
    job: u32,
    rec: &JobRec,
    completed_tu: f64,
    latency_tu: f64,
    reward: f64,
) -> JobSpans {
    let mut segments: Vec<Segment> = Vec::with_capacity(rec.stages.len() * 4 + 1);
    let mut push = |kind: SegmentKind, tier: u32, start: f64, end: f64| {
        if start.to_bits() != end.to_bits() {
            segments.push(Segment { kind, tier, start_tu: start, end_tu: end });
        }
    };
    // Deferred admission: the gap between submission and the (possibly
    // later) admission, when the fair-share gate held the job back.
    push(SegmentKind::AdmissionDeferred, NO_TIER, rec.submitted_tu, rec.arrived_t);
    for (i, stage) in rec.stages.iter().enumerate() {
        let stage_end = match rec.stages.get(i + 1) {
            Some(next) => next.enq_t,
            None => completed_tu,
        };
        let Some(anchor) = stage.anchor else {
            // Defensive: a stage with no recorded dispatch (cannot happen
            // for a completed job) degrades to pure queue wait.
            push(SegmentKind::QueueWait, NO_TIER, stage.enq_t, stage_end);
            continue;
        };
        let t_d = anchor.dispatch_t;
        // Wait window [enq, dispatch]: split out the anchor worker's boot
        // window when it overlaps (the job was waiting *for the boot*).
        match anchor.boot {
            Some(b) if b.end > stage.enq_t && b.end <= t_d => {
                let boot_from = if b.start > stage.enq_t { b.start } else { stage.enq_t };
                let kind =
                    if b.reshape { SegmentKind::ReshapePenalty } else { SegmentKind::BootWait };
                push(SegmentKind::QueueWait, NO_TIER, stage.enq_t, boot_from);
                push(kind, anchor.tier, boot_from, b.end);
                push(SegmentKind::QueueWait, NO_TIER, b.end, t_d);
            }
            _ => push(SegmentKind::QueueWait, NO_TIER, stage.enq_t, t_d),
        }
        // The anchor's finish is bit-reconstructible: the engine
        // scheduled its completion at exactly `dispatch_t + busy_tu`.
        let fin = t_d + anchor.busy_tu;
        push(SegmentKind::Service, anchor.tier, t_d, fin);
        push(SegmentKind::FanIn, anchor.tier, fin, stage_end);
    }
    if segments.is_empty() {
        // Zero-latency degenerate case: keep the tiling non-empty so the
        // endpoint checks still hold.
        segments.push(Segment {
            kind: SegmentKind::Service,
            tier: NO_TIER,
            start_tu: rec.submitted_tu,
            end_tu: completed_tu,
        });
    }
    JobSpans {
        tenant,
        job,
        submitted_tu: rec.submitted_tu,
        completed_tu,
        latency_tu,
        reward,
        stages: rec.stages.len() as u32,
        segments,
    }
}

impl Observer for SpanObserver {
    fn on_event(&mut self, at: SimTime, event: &TraceEvent) {
        let t = at.as_tu();
        match *event {
            TraceEvent::JobArrived { job, submitted_tu, .. } => {
                self.on_job_arrived(t, job, submitted_tu)
            }
            TraceEvent::JobStageAdvanced { job, .. } => self.on_stage_advanced(t, job),
            TraceEvent::SubtaskDispatched { job, stage, vm, busy_tu, .. } => {
                self.on_dispatched(t, job, stage, vm, busy_tu)
            }
            TraceEvent::JobCompleted { job, latency_tu, reward, .. } => {
                self.on_completed(t, job, latency_tu, reward)
            }
            TraceEvent::VmHired { vm, tier, .. } => self.on_vm_hired(t, vm, tier),
            TraceEvent::VmReshaped { vm, tier, .. } => self.on_vm_reshaped(t, vm, tier),
            TraceEvent::VmBooted { vm, .. } => self.on_vm_booted(t, vm),
            _ => {}
        }
    }
}

/// Builds one [`SpanObserver`] per session and merges the resulting
/// [`SpanSet`]s in session-ordinal order (the fleet bridge).
#[derive(Debug, Clone, Copy)]
pub struct SpansFactory {
    tenants: u64,
}

impl SpansFactory {
    /// Factory for single-tenant replications.
    pub fn solo() -> SpansFactory {
        SpansFactory { tenants: 1 }
    }

    /// Factory for fleet runs: session ordinal `k` belongs to tenant
    /// `k % tenants` (the convention `run_fleet_replicated_with` uses).
    pub fn fleet(tenants: u64) -> SpansFactory {
        SpansFactory { tenants: tenants.max(1) }
    }
}

impl ObserverFactory for SpansFactory {
    type Obs = SpanObserver;
    type Summary = SpanSet;

    fn build(&self, session: u64) -> SpanObserver {
        SpanObserver::for_tenant((session % self.tenants) as u32)
    }

    fn finish(&self, obs: SpanObserver) -> SpanSet {
        obs.into_spans()
    }
}

/// A [`TraceStore`] and a [`SpanObserver`] fed from the same stream:
/// what the bins' `--spans` flag runs, since the Perfetto export needs
/// both the raw tables and the derived spans.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    /// The columnar store ingesting every event.
    pub store: TraceStore,
    /// The span deriver riding along.
    pub spans: SpanObserver,
}

impl Recorder {
    /// A recorder for one tenant's stream.
    pub fn for_tenant(tenant: u32) -> Recorder {
        Recorder { store: TraceStore::for_tenant(tenant), spans: SpanObserver::for_tenant(tenant) }
    }
}

impl Observer for Recorder {
    fn on_event(&mut self, at: SimTime, event: &TraceEvent) {
        self.store.ingest(at, event);
        self.spans.on_event(at, event);
    }
}

/// What a finished [`Recorder`] yields; merges field-wise in session
/// order like its parts.
#[derive(Debug, Clone, Default)]
pub struct Recording {
    /// The merged columnar store.
    pub store: TraceStore,
    /// The merged span sets.
    pub spans: SpanSet,
}

impl Merge for Recording {
    fn merge(&mut self, other: Recording) {
        self.store.merge(other.store);
        self.spans.merge(other.spans);
    }
}

/// Factory for [`Recorder`]s across fleet replications.
#[derive(Debug, Clone, Copy)]
pub struct RecorderFactory {
    tenants: u64,
}

impl RecorderFactory {
    /// Factory for single-tenant replications.
    pub fn solo() -> RecorderFactory {
        RecorderFactory { tenants: 1 }
    }

    /// Factory for fleet runs (`session % tenants` is the tenant).
    pub fn fleet(tenants: u64) -> RecorderFactory {
        RecorderFactory { tenants: tenants.max(1) }
    }
}

impl ObserverFactory for RecorderFactory {
    type Obs = Recorder;
    type Summary = Recording;

    fn build(&self, session: u64) -> Recorder {
        Recorder::for_tenant((session % self.tenants) as u32)
    }

    fn finish(&self, obs: Recorder) -> Recording {
        Recording { store: obs.store, spans: obs.spans.into_spans() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SegmentKind;

    fn feed(obs: &mut SpanObserver, t: f64, e: TraceEvent) {
        obs.on_event(SimTime::new(t), &e);
    }

    /// A hand-built two-stage job on a freshly hired worker: the wait
    /// window must split into queue wait + boot wait, and the tiling
    /// must conserve.
    #[test]
    fn stitches_boot_and_service_segments() {
        let mut obs = SpanObserver::new();
        feed(&mut obs, 1.0, TraceEvent::JobArrived { job: 0, size_units: 5.0, submitted_tu: 1.0 });
        feed(&mut obs, 1.0, TraceEvent::JobStageAdvanced { job: 0, stage: 0, shards: 2, cores: 1 });
        feed(&mut obs, 1.2, TraceEvent::VmHired { vm: 0, tier: 0, cores: 2 });
        feed(&mut obs, 1.7, TraceEvent::VmBooted { vm: 0, cores: 2 });
        feed(
            &mut obs,
            1.7,
            TraceEvent::SubtaskDispatched {
                job: 0,
                stage: 0,
                vm: 0,
                cores: 1,
                waited_tu: 0.7,
                busy_tu: 2.0,
            },
        );
        feed(
            &mut obs,
            1.7,
            TraceEvent::SubtaskDispatched {
                job: 0,
                stage: 0,
                vm: 0,
                cores: 1,
                waited_tu: 0.7,
                busy_tu: 1.0,
            },
        );
        let stage_end = 1.7 + 2.0;
        feed(
            &mut obs,
            stage_end,
            TraceEvent::JobStageAdvanced { job: 0, stage: 1, shards: 1, cores: 1 },
        );
        feed(
            &mut obs,
            stage_end,
            TraceEvent::SubtaskDispatched {
                job: 0,
                stage: 1,
                vm: 0,
                cores: 1,
                waited_tu: 0.0,
                busy_tu: 0.5,
            },
        );
        let done = stage_end + 0.5;
        feed(
            &mut obs,
            done,
            TraceEvent::JobCompleted {
                job: 0,
                latency_tu: done - 1.0,
                reward: 10.0,
                core_stages: 3.0,
            },
        );
        let set = obs.into_spans();
        assert_eq!(set.jobs.len(), 1);
        assert_eq!(set.in_flight, 0);
        let j = &set.jobs[0];
        assert!(j.conservation_ok(), "{j:#?}");
        let kinds: Vec<SegmentKind> = j.segments.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            [
                SegmentKind::QueueWait,
                SegmentKind::BootWait,
                SegmentKind::Service,
                SegmentKind::Service,
            ],
            "{j:#?}"
        );
        // The boot window [1.2, 1.7] clipped to the wait window [1.0, 1.7].
        assert_eq!(j.segments[1].start_tu, 1.2);
        assert_eq!(j.segments[1].end_tu, 1.7);
        // Anchor is the busy=2.0 dispatch, not the busy=1.0 one.
        assert_eq!(j.segments[2].duration_tu(), 2.0);
    }

    /// A deferred job shows the admission gap, and an in-flight job at
    /// the end of the run is counted but not emitted.
    #[test]
    fn deferral_and_in_flight_accounting() {
        let mut obs = SpanObserver::for_tenant(3);
        // Submitted at 2.0, admitted at 5.0.
        feed(&mut obs, 5.0, TraceEvent::JobArrived { job: 0, size_units: 5.0, submitted_tu: 2.0 });
        feed(&mut obs, 5.0, TraceEvent::JobStageAdvanced { job: 0, stage: 0, shards: 1, cores: 1 });
        feed(&mut obs, 5.0, TraceEvent::VmHired { vm: 1, tier: 1, cores: 2 });
        feed(&mut obs, 5.5, TraceEvent::VmBooted { vm: 1, cores: 2 });
        feed(
            &mut obs,
            5.5,
            TraceEvent::SubtaskDispatched {
                job: 0,
                stage: 0,
                vm: 1,
                cores: 1,
                waited_tu: 0.5,
                busy_tu: 1.0,
            },
        );
        feed(
            &mut obs,
            6.5,
            TraceEvent::JobCompleted { job: 0, latency_tu: 4.5, reward: 1.0, core_stages: 1.0 },
        );
        // A second job that never completes.
        feed(&mut obs, 7.0, TraceEvent::JobArrived { job: 1, size_units: 5.0, submitted_tu: 7.0 });
        let set = obs.into_spans();
        assert_eq!(set.jobs.len(), 1);
        assert_eq!(set.in_flight, 1);
        let j = &set.jobs[0];
        assert_eq!(j.tenant, 3);
        assert!(j.conservation_ok(), "{j:#?}");
        assert_eq!(j.segments[0].kind, SegmentKind::AdmissionDeferred);
        assert_eq!(j.segments[0].duration_tu(), 3.0);
        // Boot (5.0→5.5) happened entirely inside the wait window, on a
        // public-tier worker.
        assert_eq!(j.segments[1].kind, SegmentKind::BootWait);
        assert_eq!(j.segments[1].tier, 1);
    }
}
