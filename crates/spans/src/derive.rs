//! Batch span derivation: replays the seven stitching-relevant tables of
//! a [`TraceStore`] through the same state machine the incremental
//! [`SpanObserver`] runs, producing an
//! identical [`SpanSet`].
//!
//! Rows are globally ordered by `(tenant, time, kind-priority, row)`;
//! the kind priority fixes the order of *different* tables at equal
//! timestamps to match the platform's emission order (a worker can boot
//! and receive a dispatch at the same instant — the boot must land
//! first), and the row index keeps within-table ties in stream order.
//!
//! The pass expects a store from a single run: a solo session, or one
//! fleet repetition (where each tenant's sub-stream is time-monotone and
//! job/worker ids are unique per tenant). Replicated fleet sweeps merge
//! stores across repetitions, which reuses ids — derive spans for those
//! through the incremental [`SpansFactory`](crate::observer::SpansFactory)
//! path instead.

use crate::observer::SpanObserver;
use crate::span::{SpanSet, NO_TIER};
use scan_sim::Merge;
use scan_tracestore::{Column, EventKind, Table, TraceStore};

/// Maps a stored tier label back to the numeric tier index the observer
/// path sees ([`NO_TIER`] for the unknown-attribution label).
fn tier_index(label: &str) -> u32 {
    match label {
        "private" => 0,
        "public" => 1,
        "unknown" => NO_TIER,
        _ => 2,
    }
}

fn u32s<'a>(table: &'a Table, name: &str) -> &'a [u32] {
    match table.column(name) {
        Some(Column::U32(v)) => v,
        _ => &[],
    }
}

fn f64s<'a>(table: &'a Table, name: &str) -> &'a [f64] {
    match table.column(name) {
        Some(Column::F64(v)) => v,
        _ => &[],
    }
}

/// Dict column decoded to tier indices, one per row.
fn tiers(table: &Table, name: &str) -> Vec<u32> {
    match table.column(name) {
        Some(Column::Dict { codes, dict }) => {
            // Decode the (tiny) dictionary once, then map codes.
            let decoded: Vec<u32> =
                (0..dict.len() as u32).map(|c| tier_index(dict.label(c))).collect();
            codes.iter().map(|&c| decoded[c as usize]).collect()
        }
        _ => Vec::new(),
    }
}

/// One replayable row, pre-extracted from its table.
#[derive(Debug, Clone, Copy)]
enum Op {
    Hired { vm: u64, tier: u32 },
    Reshaped { vm: u64, tier: u32 },
    Booted { vm: u64 },
    Arrived { job: u64, submitted_tu: f64 },
    Staged { job: u64 },
    Dispatched { job: u64, stage: u32, vm: u64, busy_tu: f64 },
    Completed { job: u64, latency_tu: f64, reward: f64 },
}

/// Derives every completed job's spans from a single-run store. The
/// result is element-for-element identical to running a
/// [`SpanObserver`] per tenant on the
/// live stream and merging in tenant order.
pub fn derive(store: &TraceStore) -> SpanSet {
    // (tenant, t_bits, kind priority, row index) — sorting t by bit
    // pattern equals numeric order because simulation time is
    // non-negative, and keeps equal-valued rows byte-stable.
    let mut rows: Vec<(u32, u64, u8, u32, Op)> = Vec::new();

    let hired = store.table(EventKind::VmHired);
    let (vm, tier) = (u32s(hired, "vm"), tiers(hired, "tier"));
    for i in 0..hired.rows() {
        let op = Op::Hired { vm: vm[i] as u64, tier: tier[i] };
        rows.push((hired.tenant()[i], hired.t_bits()[i], 0, i as u32, op));
    }

    let reshaped = store.table(EventKind::VmReshaped);
    let (vm, tier) = (u32s(reshaped, "vm"), tiers(reshaped, "tier"));
    for i in 0..reshaped.rows() {
        let op = Op::Reshaped { vm: vm[i] as u64, tier: tier[i] };
        rows.push((reshaped.tenant()[i], reshaped.t_bits()[i], 1, i as u32, op));
    }

    let booted = store.table(EventKind::VmBooted);
    let vm = u32s(booted, "vm");
    for (i, &vm) in vm.iter().enumerate() {
        let op = Op::Booted { vm: vm as u64 };
        rows.push((booted.tenant()[i], booted.t_bits()[i], 2, i as u32, op));
    }

    let arrived = store.table(EventKind::JobArrived);
    let (job, submitted) = (u32s(arrived, "job"), f64s(arrived, "submitted_tu"));
    for i in 0..arrived.rows() {
        let op = Op::Arrived { job: job[i] as u64, submitted_tu: submitted[i] };
        rows.push((arrived.tenant()[i], arrived.t_bits()[i], 3, i as u32, op));
    }

    let staged = store.table(EventKind::JobStageAdvanced);
    let job = u32s(staged, "job");
    for (i, &job) in job.iter().enumerate() {
        let op = Op::Staged { job: job as u64 };
        rows.push((staged.tenant()[i], staged.t_bits()[i], 4, i as u32, op));
    }

    let disp = store.table(EventKind::SubtaskDispatched);
    let (job, stage) = (u32s(disp, "job"), u32s(disp, "stage"));
    let (vm, busy) = (u32s(disp, "vm"), f64s(disp, "busy_tu"));
    for i in 0..disp.rows() {
        let op = Op::Dispatched {
            job: job[i] as u64,
            stage: stage[i],
            vm: vm[i] as u64,
            busy_tu: busy[i],
        };
        rows.push((disp.tenant()[i], disp.t_bits()[i], 5, i as u32, op));
    }

    let done = store.table(EventKind::JobCompleted);
    let (job, latency) = (u32s(done, "job"), f64s(done, "latency_tu"));
    let reward = f64s(done, "reward");
    for i in 0..done.rows() {
        let op = Op::Completed { job: job[i] as u64, latency_tu: latency[i], reward: reward[i] };
        rows.push((done.tenant()[i], done.t_bits()[i], 6, i as u32, op));
    }

    rows.sort_by_key(|&(tenant, t, prio, seq, _)| (tenant, t, prio, seq));

    // Replay: rows are grouped by tenant after the sort, so a fresh
    // observer per tenant run, merged in ascending-tenant order —
    // exactly the session-ordinal merge the incremental path uses.
    let mut out = SpanSet::default();
    let mut current: Option<(u32, SpanObserver)> = None;
    for (tenant, t_bits, _, _, op) in rows {
        if current.as_ref().map(|(ten, _)| *ten) != Some(tenant) {
            if let Some((_, finished)) = current.take() {
                out.merge(finished.into_spans());
            }
            current = Some((tenant, SpanObserver::for_tenant(tenant)));
        }
        let obs = &mut current.as_mut().expect("installed above").1;
        let t = f64::from_bits(t_bits);
        match op {
            Op::Hired { vm, tier } => obs.on_vm_hired(t, vm, tier),
            Op::Reshaped { vm, tier } => obs.on_vm_reshaped(t, vm, tier),
            Op::Booted { vm } => obs.on_vm_booted(t, vm),
            Op::Arrived { job, submitted_tu } => obs.on_job_arrived(t, job, submitted_tu),
            Op::Staged { job } => obs.on_stage_advanced(t, job),
            Op::Dispatched { job, stage, vm, busy_tu } => {
                obs.on_dispatched(t, job, stage, vm, busy_tu)
            }
            Op::Completed { job, latency_tu, reward } => {
                obs.on_completed(t, job, latency_tu, reward)
            }
        }
    }
    if let Some((_, finished)) = current.take() {
        out.merge(finished.into_spans());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_sim::{Observer, SimTime, TraceEvent};

    #[test]
    fn tier_labels_round_trip() {
        assert_eq!(tier_index("private"), 0);
        assert_eq!(tier_index("public"), 1);
        assert_eq!(tier_index("tier2+"), 2);
        assert_eq!(tier_index("unknown"), NO_TIER);
    }

    /// Ingest a small hand-built stream into a store, then check the
    /// batch pass reproduces the incremental observer bit-for-bit.
    #[test]
    fn derive_matches_observer_on_a_hand_built_stream() {
        let events: Vec<(f64, TraceEvent)> = vec![
            (0.5, TraceEvent::VmHired { vm: 0, tier: 1, cores: 2 }),
            (1.0, TraceEvent::JobArrived { job: 0, size_units: 4.0, submitted_tu: 0.25 }),
            (1.0, TraceEvent::JobStageAdvanced { job: 0, stage: 0, shards: 2, cores: 1 }),
            (1.5, TraceEvent::VmBooted { vm: 0, cores: 2 }),
            // Boot and dispatch at the same instant: priority must put
            // the boot first on both paths.
            (
                1.5,
                TraceEvent::SubtaskDispatched {
                    job: 0,
                    stage: 0,
                    vm: 0,
                    cores: 1,
                    waited_tu: 0.5,
                    busy_tu: 2.0,
                },
            ),
            (
                1.5,
                TraceEvent::SubtaskDispatched {
                    job: 0,
                    stage: 0,
                    vm: 0,
                    cores: 1,
                    waited_tu: 0.5,
                    busy_tu: 2.0,
                },
            ),
            (
                3.5,
                TraceEvent::JobCompleted {
                    job: 0,
                    latency_tu: 3.25,
                    reward: 8.0,
                    core_stages: 2.0,
                },
            ),
        ];
        let mut store = TraceStore::new();
        let mut obs = SpanObserver::new();
        for (t, e) in &events {
            store.ingest(SimTime::new(*t), e);
            obs.on_event(SimTime::new(*t), e);
        }
        let incremental = obs.into_spans();
        let batch = derive(&store);
        assert_eq!(batch, incremental);
        assert_eq!(batch.jobs.len(), 1);
        assert!(batch.jobs[0].conservation_ok(), "{:#?}", batch.jobs[0]);
    }
}
