//! # scan-spans — causal job spans over the trace layer
//!
//! Turns the simulator's flat [`TraceEvent`](scan_sim::TraceEvent)
//! stream into *causal, per-job* observability: every completed job's
//! end-to-end latency decomposed into an exhaustive, non-overlapping
//! sequence of typed [`Segment`]s — admission deferral,
//! queue wait, boot wait, reshape penalty, anchor service, fan-in — that
//! tile `[submitted, completed]` with bit-exact adjacency, so the
//! segments' total equals the platform-reported `latency_tu` *bit for
//! bit* (the conservation invariant, [`JobSpans::conservation_ok`]).
//!
//! Two equivalent derivation paths share one state machine: the
//! incremental [`SpanObserver`] stitches spans live on the simulator's
//! observer bus (riding alongside a
//! [`TraceStore`](scan_tracestore::TraceStore) via [`Recorder`]), and
//! the batch [`derive`](derive::derive) pass replays a stored trace's
//! tables through the same logic, producing an identical
//! [`SpanSet`]. On top sit deterministic fleet aggregates
//! ([`aggregate`](aggregate::aggregate): per-tenant / per-tier p50/p95
//! per segment) and a Chrome/Perfetto `trace_event` JSON exporter
//! ([`perfetto::export`]) that loads in `ui.perfetto.dev`.
//!
//! The segment taxonomy and the SLO metric names live in [`schema`];
//! `scan-lint`'s `spans-doc-drift` rule keeps them in sync with
//! `docs/SPANS.md` in both directions.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aggregate;
pub mod derive;
pub mod observer;
pub mod perfetto;
pub mod schema;
pub mod span;

pub use aggregate::{aggregate, render, render_slowest, GroupStats, SpanAggregates, Stats};
pub use derive::derive;
pub use observer::{Recorder, RecorderFactory, Recording, SpanObserver, SpansFactory};
pub use perfetto::export;
pub use schema::{
    SegmentKind, ALL_SEGMENTS, SLO_BURN_RATE, SLO_FLEET_VIOLATIONS_TOTAL, SLO_VIOLATIONS_TOTAL,
};
pub use span::{JobSpans, Segment, SpanSet, NO_TIER};
