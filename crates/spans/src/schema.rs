//! The span data model: the segment taxonomy every job latency is
//! decomposed into, and the SLO metric names the platform registers.
//!
//! This module is the single source of truth `scan-lint`'s
//! `spans-doc-drift` rule cross-checks against `docs/SPANS.md` in both
//! directions: every [`SegmentKind::name`] label and every `SLO_*`
//! metric-name constant must have a documentation row, and every
//! documented row must exist here.

/// What a slice of a job's end-to-end latency was spent on.
///
/// The variants tile `[submitted_tu, completed_tu]` exhaustively and
/// without overlap (see [`JobSpans`](crate::span::JobSpans) for the
/// conservation invariant): per stage, the wait window splits into
/// queue wait and the anchor worker's boot or reshape window, followed
/// by the anchor subtask's service time and the fan-in tail while the
/// stage's other shards finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SegmentKind {
    /// Held on the fair-share admission backlog before being admitted.
    AdmissionDeferred,
    /// Enqueued, waiting for a worker (no boot attributable).
    QueueWait,
    /// Waiting specifically for the anchor worker's hire boot.
    BootWait,
    /// Waiting specifically for the anchor worker's reshape boot.
    ReshapePenalty,
    /// The stage's anchor (longest-running) subtask executing.
    Service,
    /// Anchor done; waiting for the stage's remaining shards to merge.
    FanIn,
}

/// Every segment kind, in canonical (display and aggregation) order.
pub const ALL_SEGMENTS: [SegmentKind; 6] = [
    SegmentKind::AdmissionDeferred,
    SegmentKind::QueueWait,
    SegmentKind::BootWait,
    SegmentKind::ReshapePenalty,
    SegmentKind::Service,
    SegmentKind::FanIn,
];

impl SegmentKind {
    /// Stable lowercase label (used in reports, Perfetto slices and
    /// `docs/SPANS.md`).
    pub fn name(self) -> &'static str {
        match self {
            Self::AdmissionDeferred => "admission_deferred",
            Self::QueueWait => "queue_wait",
            Self::BootWait => "boot_wait",
            Self::ReshapePenalty => "reshape_penalty",
            Self::Service => "service",
            Self::FanIn => "fan_in",
        }
    }

    /// Canonical position in [`ALL_SEGMENTS`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Metric name of the per-session SLO violation counter the platform
/// registers when `ScanConfig::slo_target_tu` is set (see
/// `docs/METRICS.md`).
pub const SLO_VIOLATIONS_TOTAL: &str = "slo_violations_total";

/// Metric name of the windowed SLO burn-rate series (violations per TU).
pub const SLO_BURN_RATE: &str = "slo_burn_rate";

/// Metric name of the per-tenant fleet projection of SLO violations.
pub const SLO_FLEET_VIOLATIONS_TOTAL: &str = "fleet_slo_violations_total";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_order_matches_discriminants() {
        for (i, kind) in ALL_SEGMENTS.iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert_eq!(*kind as usize, i);
        }
    }

    #[test]
    fn segment_names_are_unique() {
        for (i, a) in ALL_SEGMENTS.iter().enumerate() {
            for b in &ALL_SEGMENTS[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
