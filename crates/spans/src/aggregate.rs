//! Fleet-level critical-path aggregates: per-tenant and per-tier
//! distributions of segment durations, plus the rendered text report the
//! bins' `--spans` flag writes.
//!
//! Everything here is deterministic down to the byte: groups are keyed
//! through `BTreeMap` (sorted iteration), percentiles use nearest-rank
//! over a `total_cmp` sort, and floats render through Rust's shortest
//! round-trip `Display` — so the same merged [`SpanSet`] always renders
//! the same report regardless of thread count.

use crate::schema::{SegmentKind, ALL_SEGMENTS};
use crate::span::{SpanSet, NO_TIER};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Distribution summary of one group's segment durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Segments in the group.
    pub count: u64,
    /// Total duration, TU.
    pub total_tu: f64,
    /// Arithmetic mean duration, TU.
    pub mean_tu: f64,
    /// Nearest-rank median duration, TU.
    pub p50_tu: f64,
    /// Nearest-rank 95th-percentile duration, TU.
    pub p95_tu: f64,
}

/// One aggregate row: a (group key, segment kind) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupStats {
    /// Group key: tenant id or tier index ([`NO_TIER`] = unattributed).
    pub key: u32,
    /// Segment kind the row describes.
    pub kind: SegmentKind,
    /// The distribution.
    pub stats: Stats,
}

/// The full aggregate view of a span set.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanAggregates {
    /// Completed jobs summarised.
    pub jobs: u64,
    /// Jobs still in flight when the run(s) ended.
    pub in_flight: u64,
    /// Rows grouped by owning tenant, ascending (tenant, kind).
    pub by_tenant: Vec<GroupStats>,
    /// Rows grouped by attributed tier, ascending (tier, kind).
    pub by_tier: Vec<GroupStats>,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn summarise(groups: BTreeMap<(u32, u8), Vec<f64>>) -> Vec<GroupStats> {
    groups
        .into_iter()
        .map(|((key, kind), mut durations)| {
            durations.sort_by(f64::total_cmp);
            let count = durations.len() as u64;
            let total_tu: f64 = durations.iter().sum();
            GroupStats {
                key,
                kind: ALL_SEGMENTS[kind as usize],
                stats: Stats {
                    count,
                    total_tu,
                    mean_tu: total_tu / count as f64,
                    p50_tu: percentile(&durations, 0.50),
                    p95_tu: percentile(&durations, 0.95),
                },
            }
        })
        .collect()
}

/// Aggregates every segment of every completed job, grouped by tenant
/// and (independently) by attributed tier.
pub fn aggregate(set: &SpanSet) -> SpanAggregates {
    let mut by_tenant: BTreeMap<(u32, u8), Vec<f64>> = BTreeMap::new();
    let mut by_tier: BTreeMap<(u32, u8), Vec<f64>> = BTreeMap::new();
    for job in &set.jobs {
        for seg in &job.segments {
            let d = seg.duration_tu();
            by_tenant.entry((job.tenant, seg.kind.index() as u8)).or_default().push(d);
            by_tier.entry((seg.tier, seg.kind.index() as u8)).or_default().push(d);
        }
    }
    SpanAggregates {
        jobs: set.jobs.len() as u64,
        in_flight: set.in_flight,
        by_tenant: summarise(by_tenant),
        by_tier: summarise(by_tier),
    }
}

fn key_label(kind: &str, key: u32) -> String {
    if key == NO_TIER {
        format!("{kind}=none")
    } else {
        format!("{kind}={key}")
    }
}

/// Renders the aggregate report, one `spans:`-prefixed line per cell.
pub fn render(agg: &SpanAggregates) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "spans: jobs={} in_flight={}", agg.jobs, agg.in_flight);
    for (group, rows) in [("tenant", &agg.by_tenant), ("tier", &agg.by_tier)] {
        for r in rows {
            let _ = writeln!(
                out,
                "spans: {} segment={} count={} total_tu={} mean_tu={} p50_tu={} p95_tu={}",
                key_label(group, r.key),
                r.kind.name(),
                r.stats.count,
                r.stats.total_tu,
                r.stats.mean_tu,
                r.stats.p50_tu,
                r.stats.p95_tu,
            );
        }
    }
    out
}

/// Renders the `--slowest N` job table: each job's latency decomposed
/// into its per-kind totals, slowest first.
pub fn render_slowest(set: &SpanSet, n: usize) -> String {
    let mut out = String::new();
    let picks = set.slowest(n);
    let _ = writeln!(out, "spans: slowest jobs (top {} of {})", picks.len(), set.jobs.len());
    let mut header = String::from("spans: tenant job latency_tu stages");
    for kind in ALL_SEGMENTS {
        let _ = write!(header, " {}", kind.name());
    }
    let _ = writeln!(out, "{header}");
    for i in picks {
        let job = &set.jobs[i];
        let _ = write!(out, "spans: {} {} {} {}", job.tenant, job.job, job.latency_tu, job.stages);
        for d in job.breakdown() {
            let _ = write!(out, " {d}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{JobSpans, Segment};

    fn one_job(tenant: u32, job: u32, segs: &[(SegmentKind, u32, f64, f64)]) -> JobSpans {
        let segments: Vec<Segment> = segs
            .iter()
            .map(|&(kind, tier, start_tu, end_tu)| Segment { kind, tier, start_tu, end_tu })
            .collect();
        let submitted_tu = segments.first().map(|s| s.start_tu).unwrap_or(0.0);
        let completed_tu = segments.last().map(|s| s.end_tu).unwrap_or(0.0);
        JobSpans {
            tenant,
            job,
            submitted_tu,
            completed_tu,
            latency_tu: completed_tu - submitted_tu,
            reward: 1.0,
            stages: 1,
            segments,
        }
    }

    #[test]
    fn aggregates_group_by_tenant_and_tier() {
        let mut set = SpanSet::default();
        set.jobs.push(one_job(
            0,
            0,
            &[(SegmentKind::QueueWait, NO_TIER, 0.0, 1.0), (SegmentKind::Service, 0, 1.0, 3.0)],
        ));
        set.jobs.push(one_job(
            1,
            0,
            &[(SegmentKind::QueueWait, NO_TIER, 0.0, 3.0), (SegmentKind::Service, 1, 3.0, 4.0)],
        ));
        let agg = aggregate(&set);
        assert_eq!(agg.jobs, 2);
        // Two tenants × two kinds each.
        assert_eq!(agg.by_tenant.len(), 4);
        // Tiers: NO_TIER (queue) + tier 0 + tier 1.
        assert_eq!(agg.by_tier.len(), 3);
        let queue = agg
            .by_tier
            .iter()
            .find(|r| r.key == NO_TIER && r.kind == SegmentKind::QueueWait)
            .expect("queue-wait tier row");
        assert_eq!(queue.stats.count, 2);
        assert_eq!(queue.stats.total_tu, 4.0);
        assert_eq!(queue.stats.mean_tu, 2.0);
        assert_eq!(queue.stats.p50_tu, 1.0);
        assert_eq!(queue.stats.p95_tu, 3.0);
    }

    #[test]
    fn render_is_line_per_cell_and_stable() {
        let mut set = SpanSet::default();
        set.jobs.push(one_job(0, 0, &[(SegmentKind::Service, 0, 0.0, 2.5)]));
        let text = render(&aggregate(&set));
        assert!(text.starts_with("spans: jobs=1 in_flight=0\n"), "{text}");
        assert!(
            text.contains(
                "spans: tenant=0 segment=service count=1 total_tu=2.5 mean_tu=2.5 p50_tu=2.5 p95_tu=2.5"
            ),
            "{text}"
        );
        assert!(text.contains("spans: tier=0 segment=service"), "{text}");
    }

    #[test]
    fn slowest_table_lists_breakdowns() {
        let mut set = SpanSet::default();
        set.jobs.push(one_job(
            0,
            7,
            &[(SegmentKind::QueueWait, NO_TIER, 0.0, 1.5), (SegmentKind::Service, 0, 1.5, 2.0)],
        ));
        set.jobs.push(one_job(0, 8, &[(SegmentKind::Service, 0, 0.0, 9.0)]));
        let text = render_slowest(&set, 1);
        assert!(text.starts_with("spans: slowest jobs (top 1 of 2)\n"), "{text}");
        assert!(text.contains("service fan_in\n"), "{text}");
        // Job 8 (latency 9) leads; its service total is 9.
        assert!(text.contains("spans: 0 8 9 1 0 0 0 0 9 0\n"), "{text}");
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.95), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
