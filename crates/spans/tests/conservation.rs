//! The tentpole invariants, end to end against the real platform:
//!
//! * **Conservation** — every completed job of a medium fixed-seed fig4
//!   cell decomposes into segments that tile `[submitted, completed]`
//!   bit-exactly and sum (telescoped) to the reported `latency_tu`.
//! * **Path equivalence** — the batch derivation over the columnar store
//!   reproduces the incremental observer element for element.
//! * **Thread invariance** — merged fleet span sets, and the rendered
//!   aggregate report, are bit-identical to a sequential fold, which is
//!   exactly what `RAYON_NUM_THREADS=1` executes.
//! * **Property** — randomised single-stage job timelines (boot windows
//!   in every position relative to the wait window, anchor ties,
//!   deferrals) always conserve.

use proptest::prelude::*;
use scan_platform::config::{ScanConfig, VariableParams};
use scan_platform::fleet::{run_fleet_replicated_with, run_fleet_with, FleetConfig};
use scan_platform::session::run_session_with;
use scan_sched::scaling::ScalingPolicy;
use scan_sim::{Merge, Observer, SimTime, TraceEvent};
use scan_spans::{
    aggregate, derive, render, render_slowest, Recorder, RecorderFactory, Recording, SpanObserver,
};
use scan_tracestore::EventKind;

/// The bench suite's medium fig4 cell: predictive scaling, 2.0 TU mean
/// interval, fixed seed, 300 TU horizon — a few hundred completed jobs.
fn fig4_cfg() -> ScanConfig {
    let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.0), 99);
    cfg.fixed.sim_time_tu = 300.0;
    // Tight enough that the monitor actually fires in this cell (the
    // break-even default ≈ 26.7 TU is above every latency here).
    cfg.slo_target_tu = Some(5.0);
    cfg
}

#[test]
fn medium_fig4_cell_conserves_and_derivation_paths_agree() {
    let cfg = fig4_cfg();
    let (metrics, rec) = run_session_with(&cfg, 0, Recorder::default());
    let spans = rec.spans.into_spans();

    assert!(spans.jobs.len() > 100, "expected a real workload, got {} jobs", spans.jobs.len());
    assert_eq!(spans.jobs.len() as u64, metrics.jobs_completed, "one span tree per completion");
    assert!(
        spans.jobs.len() as u64 + spans.in_flight <= metrics.jobs_submitted,
        "admitted jobs cannot exceed submissions"
    );
    for job in &spans.jobs {
        assert!(
            job.conservation_ok(),
            "job {} breaks conservation: latency={} span={} segments={:#?}",
            job.job,
            job.latency_tu,
            job.span_tu(),
            job.segments
        );
    }

    // The SLO monitor fired and landed in the trace.
    assert!(metrics.jobs_slo_violated > 0, "5 TU target must be missed by some jobs");
    assert_eq!(
        rec.store.table(EventKind::SloViolation).rows() as u64,
        metrics.jobs_slo_violated,
        "one slo_violation event per counted violation"
    );

    // Batch derivation over the store equals the incremental observer.
    let batch = derive(&rec.store);
    assert_eq!(batch, spans, "derive(store) must reproduce the live observer");

    // The aggregate report mentions every segment kind that occurred and
    // the slowest-job table is non-trivial.
    let report = render(&aggregate(&spans));
    assert!(report.contains("segment=service"), "{report}");
    let table = render_slowest(&spans, 5);
    assert_eq!(table.lines().count(), 2 + 5, "{table}");
}

#[test]
fn fleet_merged_spans_equal_sequential_fold() {
    let mut base = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.5), 7);
    base.fixed.sim_time_tu = 2_000.0;
    base.slo_target_tu = Some(base.breakeven_latency_tu());
    let mut cfg = FleetConfig::new(base, 3);
    cfg.jobs_per_tenant = 4;
    let reps = 3u64;
    let factory = RecorderFactory::fleet(u64::from(cfg.tenants));

    let (par_metrics, par) = run_fleet_replicated_with(&cfg, reps, &factory);

    let mut seq = Recording::default();
    let mut seq_metrics = Vec::new();
    for rep in 0..reps {
        let (m, tenants) = run_fleet_with(&cfg, rep, &factory);
        seq_metrics.push(m);
        for tenant in tenants {
            seq.merge(tenant);
        }
    }

    assert_eq!(par_metrics, seq_metrics);
    assert!(!par.spans.jobs.is_empty());
    assert_eq!(par.spans, seq.spans, "merged span sets must not depend on thread count");
    assert_eq!(par.store.digest(), seq.store.digest());
    // The byte-level artefact CI compares across RAYON_NUM_THREADS.
    let a = format!("{}{}", render(&aggregate(&par.spans)), render_slowest(&par.spans, 10));
    let b = format!("{}{}", render(&aggregate(&seq.spans)), render_slowest(&seq.spans, 10));
    assert_eq!(a, b);
    for job in &par.spans.jobs {
        assert!(job.conservation_ok(), "fleet job breaks conservation: {job:#?}");
    }
    // All three tenants contributed spans.
    for tenant in 0..cfg.tenants as u32 {
        assert!(par.spans.jobs.iter().any(|j| j.tenant == tenant), "tenant {tenant} missing");
    }
}

proptest! {
    /// Randomised single-stage jobs: the boot window lands before,
    /// inside, or after the wait window; dispatches tie or dominate on
    /// busy time; admission defers by arbitrary gaps. Conservation must
    /// hold in every case.
    #[test]
    fn random_job_timelines_conserve(
        jobs in proptest::collection::vec(
            (
                0.0f64..4.0,  // admission deferral
                0.0f64..3.0,  // hire lead before arrival
                0.0f64..4.0,  // boot duration
                0.0f64..3.0,  // queue wait after arrival
                0.1f64..5.0,  // first dispatch busy
                0.0f64..6.0,  // second dispatch busy (may dominate)
                0.0f64..1.0,  // fan-in tail
                0u32..3,      // flavor: 0 hire, 1 reshape, 2 never boots
            ),
            1..40,
        ),
    ) {
        let mut obs = SpanObserver::new();
        let mut clock = 0.0f64;
        let mut expected = 0usize;
        for (i, &(defer, lead, boot, wait, busy_a, busy_b, fan_in, flavor)) in
            jobs.iter().enumerate()
        {
            let job = i as u64;
            let vm = i as u64;
            let submitted = clock;
            let arrive = submitted + defer;
            let hire_t = (arrive - lead).max(0.0);
            let boot_end = hire_t + boot;
            let dispatch_t = arrive + wait;
            let feed = |o: &mut SpanObserver, t: f64, e: TraceEvent| {
                o.on_event(SimTime::new(t), &e);
            };
            match flavor {
                0 => feed(&mut obs, hire_t, TraceEvent::VmHired { vm, tier: 0, cores: 2 }),
                _ => feed(&mut obs, hire_t, TraceEvent::VmReshaped {
                    vm, tier: 1, cores_from: 2, cores_to: 4,
                }),
            }
            if flavor != 2 && boot_end <= dispatch_t {
                feed(&mut obs, boot_end, TraceEvent::VmBooted { vm, cores: 2 });
            }
            feed(&mut obs, arrive, TraceEvent::JobArrived {
                job, size_units: 1.0, submitted_tu: submitted,
            });
            feed(&mut obs, arrive, TraceEvent::JobStageAdvanced {
                job, stage: 0, shards: 2, cores: 1,
            });
            for busy in [busy_a, busy_b] {
                feed(&mut obs, dispatch_t, TraceEvent::SubtaskDispatched {
                    job, stage: 0, vm, cores: 1, waited_tu: wait, busy_tu: busy,
                });
            }
            let completed = dispatch_t + busy_a.max(busy_b) + fan_in;
            feed(&mut obs, completed, TraceEvent::JobCompleted {
                job,
                latency_tu: completed - submitted,
                reward: 1.0,
                core_stages: 2.0,
            });
            expected += 1;
            clock = completed + 0.125;
        }
        let set = obs.into_spans();
        prop_assert_eq!(set.jobs.len(), expected);
        prop_assert_eq!(set.in_flight, 0);
        for job in &set.jobs {
            prop_assert!(
                job.conservation_ok(),
                "job {} breaks conservation: {:#?}",
                job.job,
                job
            );
        }
    }
}
