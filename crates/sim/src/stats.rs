//! Statistics collectors used across the evaluation.
//!
//! * [`OnlineStats`] — Welford's numerically stable single-pass mean /
//!   variance, used for "mean ± 1σ" reporting (the paper's error bars are
//!   one standard deviation either side of the mean over 10 repetitions).
//! * [`TimeWeighted`] — integrates a piecewise-constant signal over
//!   simulated time (queue lengths, busy cores) to produce time-averages.
//! * [`Histogram`] — fixed-width bins for latency distributions.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Welford online mean / variance accumulator.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "observation must be finite");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Builds an accumulator from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than one observation).
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance with Bessel's correction (0 with < 2 observations).
    pub fn variance_sample(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation — the paper's error-bar half-width.
    pub fn stddev(&self) -> f64 {
        self.variance_sample().sqrt()
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another accumulator (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n_total as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n_total as f64;
        self.n = n_total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the value in
/// force between two updates is integrated over that span.
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    last_update: SimTime,
    current: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Starts tracking with an initial value at time zero.
    pub fn new(initial: f64) -> Self {
        TimeWeighted { last_update: SimTime::ZERO, current: initial, integral: 0.0, peak: initial }
    }

    /// Updates the signal to `value` at instant `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_update, "time-weighted updates must be in time order");
        self.integral += self.current * (now.as_tu() - self.last_update.as_tu());
        self.last_update = now;
        self.current = value;
        self.peak = self.peak.max(value);
    }

    /// Adjusts the signal by `delta` at instant `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.current + delta;
        self.set(now, v);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Highest value the signal has reached.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Integral of the signal from time zero to `now`.
    pub fn integral_until(&self, now: SimTime) -> f64 {
        self.integral + self.current * (now.as_tu() - self.last_update.as_tu())
    }

    /// Time-average of the signal over `[0, now]`.
    pub fn average_until(&self, now: SimTime) -> f64 {
        let t = now.as_tu();
        if t == 0.0 {
            self.current
        } else {
            self.integral_until(now) / t
        }
    }
}

/// A fixed-width histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0);
        Histogram { lo, hi, bins: vec![0; nbins], underflow: 0, overflow: 0, count: 0 }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            // Guard against FP edge cases putting x==hi-ε into bins.len().
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Counts below `lo` / at-or-above `hi`.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Approximate quantile by scanning the CDF (returns bin midpoints;
    /// `q` in `[0,1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut cum = self.underflow;
        if cum >= target && self.underflow > 0 {
            return self.lo;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &b) in self.bins.iter().enumerate() {
            cum += b;
            if cum >= target {
                return self.lo + (i as f64 + 0.5) * w;
            }
        }
        self.hi
    }
}

/// Formats `mean ± stddev` the way EXPERIMENTS.md tables expect.
pub fn fmt_mean_sd(stats: &OnlineStats) -> String {
    format!("{:.2} ± {:.2}", stats.mean(), stats.stddev())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = OnlineStats::from_slice(&xs);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance_population() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(37);
        let mut left = OnlineStats::from_slice(a);
        let right = OnlineStats::from_slice(b);
        left.merge(&right);
        let all = OnlineStats::from_slice(&xs);
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance_sample() - all.variance_sample()).abs() < 1e-10);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(0.0);
        tw.set(SimTime::new(1.0), 10.0); // 0 for [0,1)
        tw.set(SimTime::new(3.0), 2.0); // 10 for [1,3)
                                        // 2 for [3,4)
        let avg = tw.average_until(SimTime::new(4.0));
        // integral = 0*1 + 10*2 + 2*1 = 22; avg = 5.5
        assert!((avg - 5.5).abs() < 1e-12);
        assert_eq!(tw.peak(), 10.0);
        assert_eq!(tw.current(), 2.0);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new(1.0);
        tw.add(SimTime::new(2.0), 3.0);
        assert_eq!(tw.current(), 4.0);
        assert!((tw.integral_until(SimTime::new(3.0)) - (1.0 * 2.0 + 4.0 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.bins()[0], 2); // 0.0 and 0.5
        assert_eq!(h.bins()[5], 1); // 5.0
        assert_eq!(h.bins()[9], 1); // 9.99
    }

    #[test]
    fn histogram_quantile_midpoints() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.quantile(0.5);
        assert!((median - 49.5).abs() <= 1.0, "median {median}");
    }

    #[test]
    fn fmt_mean_sd_shape() {
        let s = OnlineStats::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(fmt_mean_sd(&s), "2.00 ± 1.00");
    }

    proptest! {
        #[test]
        fn prop_welford_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
            let s = OnlineStats::from_slice(&xs);
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
            prop_assert!((s.variance_population() - var).abs() < 1e-5 * var.abs().max(1.0));
        }

        #[test]
        fn prop_merge_any_split(xs in proptest::collection::vec(-1e3f64..1e3, 2..200), split in 0usize..200) {
            let split = split % xs.len();
            let (a, b) = xs.split_at(split);
            let mut left = OnlineStats::from_slice(a);
            left.merge(&OnlineStats::from_slice(b));
            let all = OnlineStats::from_slice(&xs);
            prop_assert!((left.mean() - all.mean()).abs() < 1e-8);
            prop_assert!((left.variance_sample() - all.variance_sample()).abs() < 1e-6);
            prop_assert_eq!(left.count(), all.count());
        }

        #[test]
        fn prop_histogram_conserves_count(xs in proptest::collection::vec(-50.0f64..150.0, 0..300)) {
            let mut h = Histogram::new(0.0, 100.0, 20);
            for &x in &xs { h.record(x); }
            let (u, o) = h.outliers();
            let binned: u64 = h.bins().iter().sum();
            prop_assert_eq!(u + o + binned, xs.len() as u64);
        }
    }
}
