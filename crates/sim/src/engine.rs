//! A minimal generic simulation driver.
//!
//! The SCAN platform crate owns a rich world-state struct; this engine only
//! standardises the loop around the [`Calendar`]: pop the next event, hand
//! it to the handler together with a scheduling context, stop at the
//! horizon. Keeping the loop here means every simulation in the workspace
//! shares identical ordering/termination semantics.

use crate::calendar::Calendar;
use crate::time::SimTime;
use scan_metrics::{HistogramId, Metrics};

/// What a handler tells the engine after processing one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Keep running.
    Continue,
    /// Stop immediately (e.g. an absorbing error state or early-exit
    /// condition); remaining events are discarded.
    Halt,
}

/// User logic driven by the engine.
pub trait EventHandler {
    /// The event payload type routed through the calendar.
    type Event;

    /// Processes one event. `calendar` is exposed so the handler can
    /// schedule follow-up events; `now` equals the event's fire time.
    fn handle(
        &mut self,
        now: SimTime,
        event: Self::Event,
        calendar: &mut Calendar<Self::Event>,
    ) -> StepOutcome;
}

/// Statistics about a completed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Number of events actually dispatched.
    pub events_dispatched: u64,
    /// Clock value when the run stopped.
    pub ended_at: SimTime,
    /// True if the run stopped because the horizon was reached (rather
    /// than calendar exhaustion or a `Halt`).
    pub hit_horizon: bool,
}

/// The generic event loop.
#[derive(Debug)]
pub struct Engine<E> {
    calendar: Calendar<E>,
    horizon: Option<SimTime>,
    batch_hist: Option<(Metrics, HistogramId)>,
}

impl<E> Engine<E> {
    /// Creates an engine that runs until the calendar empties.
    pub fn new() -> Self {
        Engine { calendar: Calendar::new(), horizon: None, batch_hist: None }
    }

    /// Creates an engine that stops once the clock would pass `horizon`.
    /// Events scheduled exactly at the horizon still fire.
    pub fn with_horizon(horizon: SimTime) -> Self {
        Engine { calendar: Calendar::new(), horizon: Some(horizon), batch_hist: None }
    }

    /// Attaches a metrics registry; the engine records the size of every
    /// simultaneous-event batch it drains into `sim_calendar_batch_size`.
    /// Without this call (or with a disabled handle) the run loop does not
    /// touch metrics at all.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        if let Some(id) = metrics.with_registry(|r| {
            r.histogram(
                "sim_calendar_batch_size",
                "",
                "",
                "1",
                "Simultaneous events drained from the calendar per batch",
            )
        }) {
            self.batch_hist = Some((metrics.clone(), id));
        }
    }

    /// Access to the calendar for seeding initial events.
    pub fn calendar_mut(&mut self) -> &mut Calendar<E> {
        &mut self.calendar
    }

    /// Read access to the calendar.
    pub fn calendar(&self) -> &Calendar<E> {
        &self.calendar
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.calendar.now()
    }

    /// Runs to completion: pops events in order, dispatching each to
    /// `handler`, until the calendar is empty, the horizon is passed, or
    /// the handler halts.
    ///
    /// Simultaneous events are drained from the calendar in batches
    /// ([`Calendar::pop_batch`]) and dispatched in schedule order — one
    /// heap pop run per instant instead of a peek/pop pair per event.
    /// Ordering is identical to one-at-a-time popping: events a handler
    /// schedules at the current instant carry higher sequence numbers
    /// than the whole in-flight batch, so they fire in the next batch at
    /// the same instant.
    pub fn run<H>(&mut self, handler: &mut H) -> RunReport
    where
        H: EventHandler<Event = E>,
    {
        let mut dispatched = 0u64;
        // Reused across batches; batches are small (simultaneous events
        // only), so this stays at its high-water mark for the whole run.
        let mut batch: Vec<crate::calendar::ScheduledEvent<E>> = Vec::new();
        loop {
            match self.calendar.peek_time() {
                None => {
                    return RunReport {
                        events_dispatched: dispatched,
                        ended_at: self.calendar.now(),
                        hit_horizon: false,
                    }
                }
                Some(t) => {
                    if let Some(h) = self.horizon {
                        if t > h {
                            self.calendar.clear();
                            return RunReport {
                                events_dispatched: dispatched,
                                ended_at: h,
                                hit_horizon: true,
                            };
                        }
                    }
                }
            }
            self.calendar.pop_batch(&mut batch);
            if let Some((m, id)) = &self.batch_hist {
                m.record(*id, batch.len() as f64);
            }
            for ev in batch.drain(..) {
                dispatched += 1;
                match handler.handle(ev.at, ev.event, &mut self.calendar) {
                    StepOutcome::Continue => {}
                    StepOutcome::Halt => {
                        return RunReport {
                            events_dispatched: dispatched,
                            ended_at: self.calendar.now(),
                            hit_horizon: false,
                        }
                    }
                }
            }
        }
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A handler that re-schedules itself `remaining` times at +1 TU.
    struct Ticker {
        remaining: u32,
        seen: Vec<f64>,
    }

    impl EventHandler for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _: (), cal: &mut Calendar<()>) -> StepOutcome {
            self.seen.push(now.as_tu());
            if self.remaining > 0 {
                self.remaining -= 1;
                cal.schedule(now + SimDuration::new(1.0), ());
            }
            StepOutcome::Continue
        }
    }

    #[test]
    fn runs_until_calendar_empty() {
        let mut engine = Engine::new();
        engine.calendar_mut().schedule(SimTime::ZERO, ());
        let mut h = Ticker { remaining: 3, seen: vec![] };
        let report = engine.run(&mut h);
        assert_eq!(h.seen, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(report.events_dispatched, 4);
        assert!(!report.hit_horizon);
        assert_eq!(report.ended_at, SimTime::new(3.0));
    }

    #[test]
    fn horizon_stops_the_run() {
        let mut engine = Engine::with_horizon(SimTime::new(2.0));
        engine.calendar_mut().schedule(SimTime::ZERO, ());
        let mut h = Ticker { remaining: 100, seen: vec![] };
        let report = engine.run(&mut h);
        // Events at 0, 1, 2 fire; the one at 3 is beyond the horizon.
        assert_eq!(h.seen, vec![0.0, 1.0, 2.0]);
        assert!(report.hit_horizon);
        assert_eq!(report.ended_at, SimTime::new(2.0));
    }

    struct HaltAfter(u32);
    impl EventHandler for HaltAfter {
        type Event = u32;
        fn handle(&mut self, _: SimTime, ev: u32, _: &mut Calendar<u32>) -> StepOutcome {
            if ev >= self.0 {
                StepOutcome::Halt
            } else {
                StepOutcome::Continue
            }
        }
    }

    #[test]
    fn handler_can_halt_early() {
        let mut engine = Engine::new();
        for i in 0..10 {
            engine.calendar_mut().schedule(SimTime::new(i as f64), i);
        }
        let report = engine.run(&mut HaltAfter(4));
        assert_eq!(report.events_dispatched, 5); // events 0..=4
        assert_eq!(report.ended_at, SimTime::new(4.0));
    }

    #[test]
    fn empty_calendar_returns_immediately() {
        let mut engine: Engine<()> = Engine::new();
        struct Never;
        impl EventHandler for Never {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), _: &mut Calendar<()>) -> StepOutcome {
                panic!("no events should fire")
            }
        }
        let report = engine.run(&mut Never);
        assert_eq!(report.events_dispatched, 0);
    }
}
