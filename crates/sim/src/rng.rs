//! Deterministic, named random-number streams and the paper's distributions.
//!
//! Every stochastic component of the simulation (arrival process, batch
//! sizes, job sizes, profiling noise) draws from its *own* stream, derived
//! from the experiment seed plus a stream name. This keeps results
//! bit-reproducible even when unrelated components change how many numbers
//! they draw — the standard "common random numbers" discipline for
//! variance-controlled policy comparisons.
//!
//! Distributions are implemented from first principles (Box–Muller for the
//! normal, inverse CDF for the exponential) rather than pulling in
//! `rand_distr`, keeping the approved-dependency footprint minimal and the
//! determinism auditable.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 step — the canonical seed-expansion mixer. Used to derive
/// well-separated per-stream seeds from `(experiment_seed, stream_name)`.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string; stable across platforms and Rust versions
/// (unlike `DefaultHasher`, whose algorithm is unspecified).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives a 32-byte seed for a named stream of a given experiment seed and
/// repetition index.
pub fn derive_seed(experiment_seed: u64, repetition: u64, stream: &str) -> [u8; 32] {
    let mut state = experiment_seed
        ^ fnv1a(stream.as_bytes()).rotate_left(17)
        ^ repetition.wrapping_mul(0xA076_1D64_78BD_642F);
    let mut out = [0u8; 32];
    for chunk in out.chunks_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    out
}

/// A deterministic random stream with the distributions the paper needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a stream for `(experiment_seed, repetition, stream_name)`.
    pub fn named(experiment_seed: u64, repetition: u64, stream: &str) -> Self {
        SimRng { inner: StdRng::from_seed(derive_seed(experiment_seed, repetition, stream)) }
    }

    /// Creates a stream directly from a 64-bit seed (tests, examples).
    pub fn from_seed_u64(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi > lo, "uniform requires hi > lo");
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi >= lo);
        self.inner.gen_range(lo..=hi)
    }

    /// Exponential draw with the given mean (inverse-CDF method).
    ///
    /// Used for the paper's job inter-arrival intervals ("mean job
    /// inter-arrival interval 2.0 … 3.0 TUs").
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // 1 - U in (0,1] avoids ln(0).
        let u = 1.0 - self.uniform01();
        -mean * u.ln()
    }

    /// Standard normal draw via Box–Muller (one of the pair is discarded;
    /// the simulation draws few normals so simplicity beats caching).
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform01();
        let u2 = self.uniform01();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with given mean and *variance* (the paper specifies
    /// "jobs per arrival variance 2", "job size variance 1").
    pub fn normal(&mut self, mean: f64, variance: f64) -> f64 {
        assert!(variance >= 0.0, "variance must be non-negative");
        mean + variance.sqrt() * self.standard_normal()
    }

    /// Normal draw truncated below at `floor` by resampling (fast here
    /// because the paper's floors sit ≥ 2σ below the mean).
    pub fn truncated_normal(&mut self, mean: f64, variance: f64, floor: f64) -> f64 {
        assert!(
            floor < mean,
            "truncation floor must be below the mean for resampling to terminate quickly"
        );
        loop {
            let x = self.normal(mean, variance);
            if x >= floor {
                return x;
            }
        }
    }

    /// Rounded, truncated normal for count-valued draws such as "mean jobs
    /// per arrival event 3, variance 2" — always at least `min`.
    pub fn count_normal(&mut self, mean: f64, variance: f64, min: u64) -> u64 {
        let x = self.normal(mean, variance).round();
        if x < min as f64 {
            min
        } else {
            x as u64
        }
    }

    /// Picks an index in `0..weights.len()` proportionally to `weights`.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.uniform01() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// A factory handing out named streams for one `(experiment, repetition)`.
#[derive(Debug, Clone, Copy)]
pub struct RngHub {
    experiment_seed: u64,
    repetition: u64,
}

impl RngHub {
    /// Creates a hub for one repetition of one experiment.
    pub fn new(experiment_seed: u64, repetition: u64) -> Self {
        RngHub { experiment_seed, repetition }
    }

    /// A named stream; the same name always yields the same stream.
    pub fn stream(&self, name: &str) -> SimRng {
        SimRng::named(self.experiment_seed, self.repetition, name)
    }

    /// The repetition index this hub serves.
    pub fn repetition(&self) -> u64 {
        self.repetition
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let hub = RngHub::new(42, 0);
        let a: Vec<u64> = {
            let mut r = hub.stream("arrivals");
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = hub.stream("arrivals");
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_different_streams() {
        let hub = RngHub::new(42, 0);
        let a = hub.stream("arrivals").next_u64();
        let b = hub.stream("sizes").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn different_repetitions_differ() {
        let a = RngHub::new(42, 0).stream("x").next_u64();
        let b = RngHub::new(42, 1).stream("x").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::from_seed_u64(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.03, "empirical mean {mean}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut r = SimRng::from_seed_u64(8);
        assert!((0..10_000).all(|_| r.exponential(0.1) >= 0.0));
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::from_seed_u64(9);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(5.0, 1.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn truncated_normal_respects_floor() {
        let mut r = SimRng::from_seed_u64(10);
        assert!((0..20_000).all(|_| r.truncated_normal(5.0, 1.0, 0.5) >= 0.5));
    }

    #[test]
    fn count_normal_has_min() {
        let mut r = SimRng::from_seed_u64(11);
        // Paper: mean 3, variance 2 jobs per arrival event; at least 1.
        let counts: Vec<u64> = (0..50_000).map(|_| r.count_normal(3.0, 2.0, 1)).collect();
        assert!(counts.iter().all(|&c| c >= 1));
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn weighted_index_matches_weights() {
        let mut r = SimRng::from_seed_u64(12);
        let w = [1.0, 3.0];
        let n = 100_000;
        let ones = (0..n).filter(|_| r.weighted_index(&w) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn derive_seed_is_stable() {
        // Pin the derivation so refactors cannot silently change every
        // experiment in the repo.
        let s1 = derive_seed(1, 0, "arrivals");
        let s2 = derive_seed(1, 0, "arrivals");
        assert_eq!(s1, s2);
        assert_ne!(derive_seed(1, 0, "a"), derive_seed(1, 0, "b"));
        assert_ne!(derive_seed(1, 0, "a"), derive_seed(2, 0, "a"));
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::from_seed_u64(13);
        for _ in 0..10_000 {
            let x = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let i = r.uniform_usize(4, 6);
            assert!((4..=6).contains(&i));
        }
    }
}
