//! # scan-sim — discrete-event simulation kernel
//!
//! The SCAN paper's entire evaluation (§IV) is a simulation study, and the
//! reproduction bands forbid external simulation frameworks, so this crate
//! implements the discrete-event machinery from scratch:
//!
//! * [`time`] — the virtual clock: [`SimTime`] instants and [`SimDuration`]
//!   spans measured in the paper's abstract *time units* (TU).
//! * [`calendar`] — the pending-event set: a deterministic priority queue
//!   with stable FIFO tie-breaking for simultaneous events.
//! * [`engine`] — a small generic driver that pops events in time order and
//!   hands them to a user-supplied handler until a horizon is reached.
//! * [`rng`] — seeded, named random streams plus the distributions the paper
//!   needs (exponential inter-arrivals, truncated normal batch/job sizes),
//!   implemented from first principles so determinism is auditable.
//! * [`stats`] — Welford online mean/variance, time-weighted averages for
//!   utilisation-style metrics, and fixed-width histograms.
//! * [`trace`] — a typed event vocabulary ([`TraceEvent`]) and pluggable
//!   [`Observer`] sinks behind a zero-cost-when-disabled [`Tracer`], so
//!   the platform's subsystems can narrate scheduling decisions, VM
//!   lifecycle and job progress to whoever is listening.
//! * [`prof`] — an opt-in wall-clock self-profiler: RAII spans in
//!   thread-local call trees, mergeable summaries, sorted self/total
//!   tables and flamegraph-compatible collapsed stacks.
//! * [`tenant`] — tenant identity for fleet simulations: [`TenantId`] tags
//!   calendar entries so N tenant platforms can share one deterministic
//!   calendar.
//!
//! Everything is allocation-light in the hot path (events are plain enums
//! moved through a `BinaryHeap`) and fully deterministic: two runs with the
//! same seed produce bit-identical event orders regardless of host machine.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod calendar;
pub mod engine;
pub mod prof;
pub mod rng;
pub mod stats;
pub mod tenant;
pub mod time;
pub mod trace;

pub use calendar::{Calendar, ScheduledEvent};
pub use engine::{Engine, EventHandler, StepOutcome};
pub use rng::{RngHub, SimRng};
pub use stats::{Histogram, OnlineStats, TimeWeighted};
pub use tenant::TenantId;
pub use time::{SimDuration, SimTime};
pub use trace::{
    JsonlWriter, Merge, NullObserver, NullObserverFactory, Observer, ObserverFactory,
    ObserverHandle, RingBuffer, ScalingChoice, TraceEvent, Tracer,
};
