//! Typed simulation trace: a flat event vocabulary and pluggable
//! observers, so every layer of the platform can narrate what it does
//! without knowing who is listening.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** [`Tracer::emit`] returns immediately
//!    when no sink is attached, and the [`Tracer::emit_with`] form defers
//!    even the event *construction* behind that check, so un-observed
//!    hot paths pay one branch on an almost-always-empty `Vec`.
//! 2. **Primitive payloads.** This crate sits below the domain crates, so
//!    [`TraceEvent`] carries raw `u64`/`u32`/`f64` fields (job numbers,
//!    VM numbers, tier indices) rather than domain newtypes. Everything
//!    is `Copy`; emitting never allocates.
//! 3. **Single-threaded sharing.** A session is one thread (parallelism
//!    lives *across* sessions), so sinks are `Rc<RefCell<…>>` — the
//!    platform, the cloud provider and the scheduler can all hold clones
//!    of one [`Tracer`] and feed the same observers.
//!
//! Three general-purpose observers live here: [`NullObserver`] (measures
//! the observer-dispatch floor), [`RingBuffer`] (keeps the last N events
//! for post-mortems), and [`JsonlWriter`] (streams events as JSON lines).
//! Domain-aware aggregators (e.g. the platform's session-metrics builder)
//! implement [`Observer`] in their own crates.
//!
//! # Parallel sessions: the factory/summary bridge
//!
//! Constraint 3 makes a single sink unusable across threads — but it does
//! not need to be shared. For parallel sweeps, an [`ObserverFactory`]
//! (which *is* `Sync`) builds one observer per session *inside* each
//! worker task, and [`ObserverFactory::finish`] folds the finished
//! observer into a `Send` summary that crosses back to the coordinating
//! thread. Summaries implementing [`Merge`] are then combined in a
//! deterministic (session-ordinal) order, so an N-thread sweep reports
//! bit-identical statistics to a 1-thread run.
//!
//! # Example: a custom observer
//!
//! Any `impl Observer` can be attached to a [`Tracer`] (or, through the
//! platform crate, to a whole session). A counter for VM hires:
//!
//! ```
//! use scan_sim::{Observer, SimTime, TraceEvent, Tracer};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! #[derive(Default)]
//! struct HireCounter {
//!     hires: u64,
//! }
//!
//! impl Observer for HireCounter {
//!     fn on_event(&mut self, _at: SimTime, event: &TraceEvent) {
//!         if matches!(event, TraceEvent::VmHired { .. }) {
//!             self.hires += 1;
//!         }
//!     }
//! }
//!
//! let counter = Rc::new(RefCell::new(HireCounter::default()));
//! let mut tracer = Tracer::disabled();
//! tracer.attach(counter.clone());
//! tracer.emit(SimTime::new(1.0), TraceEvent::VmHired { vm: 0, tier: 1, cores: 4 });
//! tracer.emit(SimTime::new(2.0), TraceEvent::QueueDepthSampled { depth: 3 });
//! assert_eq!(counter.borrow().hires, 1);
//! ```
//!
//! The event vocabulary itself — every variant, its fields and units, and
//! one worked JSONL example per variant — is documented in
//! `docs/TRACE_SCHEMA.md` at the repository root.

use crate::time::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io;
use std::rc::Rc;

/// What a scaling decision chose to do with a stalled task class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingChoice {
    /// Keep waiting for an existing worker to free up.
    Wait,
    /// Hire a new private-tier worker.
    HirePrivate,
    /// Private hire was justified by the policy but vetoed by the Eq. 1
    /// delay-cost throttle.
    ThrottledPrivate,
    /// Hire a new public-tier worker.
    HirePublic,
    /// Reshape an idle worker of another shape instead of hiring.
    Reshape,
}

impl ScalingChoice {
    /// Stable lowercase label (used by the JSONL writer).
    pub fn name(self) -> &'static str {
        match self {
            Self::Wait => "wait",
            Self::HirePrivate => "hire_private",
            Self::ThrottledPrivate => "throttled_private",
            Self::HirePublic => "hire_public",
            Self::Reshape => "reshape",
        }
    }
}

/// One observation from the simulation. Variants mirror the platform's
/// event flow: jobs arrive and advance stage by stage, shard subtasks are
/// dispatched to workers, workers are hired / booted / reshaped /
/// released, and the scheduler takes scaling decisions with the Eq. 1
/// delay-cost-versus-hire-cost numbers attached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A job was admitted to the platform.
    JobArrived {
        /// Job number.
        job: u64,
        /// Dataset size in abstract units.
        size_units: f64,
        /// When the job was originally submitted, in TU. Equal to the
        /// event time unless the fair-share admission gate deferred the
        /// job first — the gap is the admission-deferred span segment.
        submitted_tu: f64,
    },
    /// A job's next stage was enqueued (stage 0 = first).
    JobStageAdvanced {
        /// Job number.
        job: u64,
        /// Stage now queued.
        stage: u32,
        /// Shard subtasks enqueued for the stage.
        shards: u32,
        /// Cores (threads) each shard needs.
        cores: u32,
    },
    /// A job finished its last stage and earned its reward.
    JobCompleted {
        /// Job number.
        job: u64,
        /// End-to-end latency in TU.
        latency_tu: f64,
        /// Reward earned (CU).
        reward: f64,
        /// Σ shards·threads of the job's plan (Fig. 5's x-axis).
        core_stages: f64,
    },
    /// A completed job missed the configured latency SLO
    /// (`latency_tu > target_tu`). Emitted right after the job's
    /// `JobCompleted` event; only present when an SLO target is set.
    SloViolation {
        /// Job number.
        job: u64,
        /// End-to-end latency in TU.
        latency_tu: f64,
        /// The SLO latency target that was missed, in TU.
        target_tu: f64,
    },
    /// A queued shard subtask started on a worker.
    SubtaskDispatched {
        /// Owning job.
        job: u64,
        /// Stage the subtask belongs to.
        stage: u32,
        /// Worker VM number.
        vm: u64,
        /// Cores the subtask occupies.
        cores: u32,
        /// Time the subtask spent queued, in TU.
        waited_tu: f64,
        /// Execution + staging time it will occupy the worker for, in TU.
        busy_tu: f64,
    },
    /// A shard subtask finished and freed its worker.
    SubtaskDone {
        /// Owning job.
        job: u64,
        /// Stage the subtask belonged to.
        stage: u32,
        /// Worker VM number.
        vm: u64,
    },
    /// A VM was hired on a tier and began booting.
    VmHired {
        /// VM number.
        vm: u64,
        /// Tier index (0 = private, 1 = public).
        tier: u32,
        /// Cores of the instance shape.
        cores: u32,
    },
    /// A VM finished booting (or reshaping) and joined the idle pool.
    VmBooted {
        /// VM number.
        vm: u64,
        /// Cores of the instance shape.
        cores: u32,
    },
    /// An idle VM was converted to a different shape (30 s penalty).
    VmReshaped {
        /// VM number.
        vm: u64,
        /// Tier index.
        tier: u32,
        /// Shape before the reshape.
        cores_from: u32,
        /// Shape after the reshape.
        cores_to: u32,
    },
    /// A VM was released and its billing settled.
    VmReleased {
        /// VM number.
        vm: u64,
        /// Tier index.
        tier: u32,
        /// Cores of the instance shape.
        cores: u32,
    },
    /// A horizontal-scaling decision for a stalled task class, with the
    /// Eq. 1 comparison that justified it. `delay_cost`/`hire_cost` are
    /// NaN when the deciding policy did not price the decision (the
    /// always/never policies decide unconditionally).
    ScalingDecision {
        /// Pipeline stage of the stalled class.
        stage: u32,
        /// Cores per subtask of the stalled class.
        cores: u32,
        /// Distinct queued jobs considered in the Eq. 1 view.
        queued_jobs: u32,
        /// Eq. 1 delay cost of waiting out the projected delay (CU).
        delay_cost: f64,
        /// Cost of hiring capacity for boot + one task (CU).
        hire_cost: f64,
        /// What was decided.
        choice: ScalingChoice,
    },
    /// Total queued subtasks across all classes changed.
    QueueDepthSampled {
        /// Queued subtasks over all classes.
        depth: u32,
    },
    /// A fleet tenant's arrival batch was deferred by the fair-share
    /// admission gate: the shared private pool is exhausted and the
    /// tenant already holds at least its fair share of it.
    AdmissionDeferred {
        /// Tenant whose batch was deferred.
        tenant: u32,
        /// Jobs pushed onto the tenant's admission backlog.
        jobs: u32,
        /// Backlogged jobs after the deferral.
        backlog: u32,
    },
    /// Previously deferred jobs cleared the fair-share admission gate.
    AdmissionResumed {
        /// Tenant whose backlog drained.
        tenant: u32,
        /// Jobs admitted from the backlog.
        jobs: u32,
        /// Backlogged jobs remaining after the resume.
        backlog: u32,
    },
    /// End-of-run billing settlement for one tier.
    TierSettled {
        /// Tier index.
        tier: u32,
        /// Total cost charged against the tier (CU).
        cost: f64,
        /// Total core·TU provisioned on the tier.
        core_tu: f64,
    },
    /// The session's event loop ended.
    RunEnded {
        /// Events the engine dispatched.
        events_dispatched: u64,
    },
}

impl TraceEvent {
    /// Stable lowercase kind tag (used by the JSONL writer and filters).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::JobArrived { .. } => "job_arrived",
            Self::JobStageAdvanced { .. } => "job_stage_advanced",
            Self::JobCompleted { .. } => "job_completed",
            Self::SloViolation { .. } => "slo_violation",
            Self::SubtaskDispatched { .. } => "subtask_dispatched",
            Self::SubtaskDone { .. } => "subtask_done",
            Self::VmHired { .. } => "vm_hired",
            Self::VmBooted { .. } => "vm_booted",
            Self::VmReshaped { .. } => "vm_reshaped",
            Self::VmReleased { .. } => "vm_released",
            Self::ScalingDecision { .. } => "scaling_decision",
            Self::QueueDepthSampled { .. } => "queue_depth",
            Self::AdmissionDeferred { .. } => "admission_deferred",
            Self::AdmissionResumed { .. } => "admission_resumed",
            Self::TierSettled { .. } => "tier_settled",
            Self::RunEnded { .. } => "run_ended",
        }
    }
}

/// A consumer of trace events. Observers are driven synchronously from
/// the emitting call site, in attachment order.
pub trait Observer {
    /// Receives one event stamped with the simulation time it occurred.
    fn on_event(&mut self, at: SimTime, event: &TraceEvent);
}

/// Shared handle to an attached observer.
pub type ObserverHandle = Rc<RefCell<dyn Observer>>;

/// Builds one observer per parallel session and folds the finished
/// observer into a [`Send`] summary — the bridge that lets the
/// `Rc<RefCell<_>>` sink machinery work *across* a thread-pool boundary
/// without itself becoming thread-safe.
///
/// The contract: the factory is shared by reference across worker threads
/// (hence `Sync`); each worker calls [`ObserverFactory::build`] with the
/// session's ordinal, owns the observer for exactly one session, then
/// hands it back through [`ObserverFactory::finish`]. Only the summary
/// crosses threads, so the observer itself may freely hold `Rc`s, open
/// files, or scratch buffers.
pub trait ObserverFactory: Sync {
    /// The per-session observer this factory builds.
    type Obs: Observer + 'static;
    /// The thread-crossing digest of one finished observer.
    type Summary: Send;

    /// Builds a fresh observer for one session. `session` is the caller's
    /// ordinal for the session (e.g. the flat `(cell, repetition)` index
    /// of a sweep) — factories may use it to label output streams or
    /// ignore it entirely.
    fn build(&self, session: u64) -> Self::Obs;

    /// Folds a finished observer into its summary after the session's
    /// final event ([`TraceEvent::RunEnded`]) has been delivered.
    fn finish(&self, obs: Self::Obs) -> Self::Summary;
}

/// Closure factories: `|session| SomeObserver::new()` builds the observer
/// and the summary is the observer itself (for observer types that are
/// already `Send` once the run is over).
impl<F, O> ObserverFactory for F
where
    F: Fn(u64) -> O + Sync,
    O: Observer + Send + 'static,
{
    type Obs = O;
    type Summary = O;

    fn build(&self, session: u64) -> O {
        self(session)
    }

    fn finish(&self, obs: O) -> O {
        obs
    }
}

/// A summary that can absorb another summary of the same session batch.
///
/// Merging must be commutative over *disjoint event streams* in the
/// counts it keeps, but callers are still required to merge in a
/// deterministic order (session-ordinal order), so floating-point sums
/// stay bit-identical regardless of worker-thread count.
pub trait Merge {
    /// Absorbs `other` into `self`.
    fn merge(&mut self, other: Self);
}

impl Merge for () {
    fn merge(&mut self, _other: ()) {}
}

/// The factory counterpart of [`NullObserver`]: builds inert observers
/// and summarises them to `()`. Lets "no extra observers" reuse the same
/// observed code path without a second implementation.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserverFactory;

impl ObserverFactory for NullObserverFactory {
    type Obs = NullObserver;
    type Summary = ();

    fn build(&self, _session: u64) -> NullObserver {
        NullObserver
    }

    fn finish(&self, _obs: NullObserver) {}
}

/// Fan-out point for trace events. Cloning a `Tracer` clones the sink
/// list (cheap `Rc` bumps) — clones feed the same observers, which is how
/// the provider and scheduler share the platform's sinks.
#[derive(Clone, Default)]
pub struct Tracer {
    sinks: Vec<ObserverHandle>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("sinks", &self.sinks.len()).finish()
    }
}

impl Tracer {
    /// A tracer with no sinks: emitting is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Attaches an observer; events emitted from now on reach it.
    pub fn attach(&mut self, sink: ObserverHandle) {
        self.sinks.push(sink);
    }

    /// Whether any observer is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Emits one event to every sink. With no sinks attached this is one
    /// empty-`Vec` branch.
    #[inline]
    pub fn emit(&self, at: SimTime, event: TraceEvent) {
        if self.sinks.is_empty() {
            return;
        }
        for sink in &self.sinks {
            sink.borrow_mut().on_event(at, &event);
        }
    }

    /// Emits the event produced by `build`, constructing it only when a
    /// sink is attached. Use this when assembling the event itself costs
    /// something (string formatting, extra queries).
    #[inline]
    pub fn emit_with(&self, at: SimTime, build: impl FnOnce() -> TraceEvent) {
        if self.sinks.is_empty() {
            return;
        }
        self.emit(at, build());
    }
}

/// Discards every event. Exists to measure the dispatch floor and to
/// satisfy "an observer must be attached" plumbing in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&mut self, _at: SimTime, _event: &TraceEvent) {}
}

/// Keeps the most recent `capacity` events for post-mortem inspection.
#[derive(Debug)]
pub struct RingBuffer {
    capacity: usize,
    buf: VecDeque<(SimTime, TraceEvent)>,
    seen: u64,
}

impl RingBuffer {
    /// A ring holding at most `capacity` events (capacity 0 keeps none).
    pub fn new(capacity: usize) -> Self {
        Self { capacity, buf: VecDeque::with_capacity(capacity.min(4096)), seen: 0 }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events observed, including evicted ones.
    pub fn total_seen(&self) -> u64 {
        self.seen
    }
}

impl Observer for RingBuffer {
    fn on_event(&mut self, at: SimTime, event: &TraceEvent) {
        self.seen += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back((at, *event));
    }
}

/// Streams events as JSON lines (`{"t":…,"kind":…,…}`) to any writer.
///
/// The JSON is hand-assembled: every field is a number, a fixed label, or
/// a pre-escaped tag, so no general serializer is needed (and the offline
/// build has none).
pub struct JsonlWriter<W: io::Write> {
    out: W,
    line: String,
    errored: bool,
    tenant: Option<u32>,
}

impl<W: io::Write> JsonlWriter<W> {
    /// Wraps a writer. I/O errors are latched: the first failure stops
    /// further writes rather than panicking mid-simulation.
    pub fn new(out: W) -> Self {
        Self { out, line: String::with_capacity(160), errored: false, tenant: None }
    }

    /// Wraps a writer that stamps every line with a `"tenant":N` field
    /// (directly after `"t"`), for fleet runs where one file per tenant
    /// would be unwieldy. [`JsonlWriter::new`] output is unchanged.
    pub fn with_tenant(out: W, tenant: u32) -> Self {
        Self { out, line: String::with_capacity(160), errored: false, tenant: Some(tenant) }
    }

    /// Whether a write error occurred (output is truncated).
    pub fn errored(&self) -> bool {
        self.errored
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

/// Writes an f64 as JSON: finite values verbatim, NaN/inf as null.
fn push_json_f64(line: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(line, "{value}");
    } else {
        line.push_str("null");
    }
}

impl<W: io::Write> Observer for JsonlWriter<W> {
    fn on_event(&mut self, at: SimTime, event: &TraceEvent) {
        if self.errored {
            return;
        }
        let line = &mut self.line;
        line.clear();
        let _ = write!(line, "{{\"t\":");
        push_json_f64(line, at.as_tu());
        if let Some(tenant) = self.tenant {
            let _ = write!(line, ",\"tenant\":{tenant}");
        }
        let _ = write!(line, ",\"kind\":\"{}\"", event.kind());
        match *event {
            TraceEvent::JobArrived { job, size_units, submitted_tu } => {
                let _ = write!(line, ",\"job\":{job},\"size_units\":");
                push_json_f64(line, size_units);
                let _ = write!(line, ",\"submitted_tu\":");
                push_json_f64(line, submitted_tu);
            }
            TraceEvent::JobStageAdvanced { job, stage, shards, cores } => {
                let _ = write!(
                    line,
                    ",\"job\":{job},\"stage\":{stage},\"shards\":{shards},\"cores\":{cores}"
                );
            }
            TraceEvent::JobCompleted { job, latency_tu, reward, core_stages } => {
                let _ = write!(line, ",\"job\":{job},\"latency_tu\":");
                push_json_f64(line, latency_tu);
                let _ = write!(line, ",\"reward\":");
                push_json_f64(line, reward);
                let _ = write!(line, ",\"core_stages\":");
                push_json_f64(line, core_stages);
            }
            TraceEvent::SloViolation { job, latency_tu, target_tu } => {
                let _ = write!(line, ",\"job\":{job},\"latency_tu\":");
                push_json_f64(line, latency_tu);
                let _ = write!(line, ",\"target_tu\":");
                push_json_f64(line, target_tu);
            }
            TraceEvent::SubtaskDispatched { job, stage, vm, cores, waited_tu, busy_tu } => {
                let _ =
                    write!(line, ",\"job\":{job},\"stage\":{stage},\"vm\":{vm},\"cores\":{cores}");
                let _ = write!(line, ",\"waited_tu\":");
                push_json_f64(line, waited_tu);
                let _ = write!(line, ",\"busy_tu\":");
                push_json_f64(line, busy_tu);
            }
            TraceEvent::SubtaskDone { job, stage, vm } => {
                let _ = write!(line, ",\"job\":{job},\"stage\":{stage},\"vm\":{vm}");
            }
            TraceEvent::VmHired { vm, tier, cores } => {
                let _ = write!(line, ",\"vm\":{vm},\"tier\":{tier},\"cores\":{cores}");
            }
            TraceEvent::VmBooted { vm, cores } => {
                let _ = write!(line, ",\"vm\":{vm},\"cores\":{cores}");
            }
            TraceEvent::VmReshaped { vm, tier, cores_from, cores_to } => {
                let _ = write!(
                    line,
                    ",\"vm\":{vm},\"tier\":{tier},\"cores_from\":{cores_from},\"cores_to\":{cores_to}"
                );
            }
            TraceEvent::VmReleased { vm, tier, cores } => {
                let _ = write!(line, ",\"vm\":{vm},\"tier\":{tier},\"cores\":{cores}");
            }
            TraceEvent::ScalingDecision {
                stage,
                cores,
                queued_jobs,
                delay_cost,
                hire_cost,
                choice,
            } => {
                let _ = write!(
                    line,
                    ",\"stage\":{stage},\"cores\":{cores},\"queued_jobs\":{queued_jobs}"
                );
                let _ = write!(line, ",\"delay_cost\":");
                push_json_f64(line, delay_cost);
                let _ = write!(line, ",\"hire_cost\":");
                push_json_f64(line, hire_cost);
                let _ = write!(line, ",\"choice\":\"{}\"", choice.name());
            }
            TraceEvent::QueueDepthSampled { depth } => {
                let _ = write!(line, ",\"depth\":{depth}");
            }
            TraceEvent::AdmissionDeferred { tenant, jobs, backlog }
            | TraceEvent::AdmissionResumed { tenant, jobs, backlog } => {
                let _ = write!(line, ",\"tenant\":{tenant},\"jobs\":{jobs},\"backlog\":{backlog}");
            }
            TraceEvent::TierSettled { tier, cost, core_tu } => {
                let _ = write!(line, ",\"tier\":{tier},\"cost\":");
                push_json_f64(line, cost);
                let _ = write!(line, ",\"core_tu\":");
                push_json_f64(line, core_tu);
            }
            TraceEvent::RunEnded { events_dispatched } => {
                let _ = write!(line, ",\"events_dispatched\":{events_dispatched}");
            }
        }
        line.push('}');
        line.push('\n');
        if self.out.write_all(line.as_bytes()).is_err() {
            self.errored = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev() -> TraceEvent {
        TraceEvent::JobArrived { job: 7, size_units: 5.25, submitted_tu: 1.5 }
    }

    #[test]
    fn disabled_tracer_is_inert_and_emit_with_is_lazy() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        tracer.emit(SimTime::new(1.0), ev());
        tracer.emit_with(SimTime::new(2.0), || panic!("must not be built"));
    }

    #[test]
    fn fanout_reaches_all_sinks_in_order() {
        let a = Rc::new(RefCell::new(RingBuffer::new(8)));
        let b = Rc::new(RefCell::new(RingBuffer::new(8)));
        let mut tracer = Tracer::disabled();
        tracer.attach(a.clone());
        tracer.attach(b.clone());
        assert!(tracer.is_enabled());

        // A clone shares the same sinks.
        let clone = tracer.clone();
        clone.emit(SimTime::new(3.0), ev());
        tracer.emit(SimTime::new(4.0), TraceEvent::QueueDepthSampled { depth: 9 });

        for ring in [&a, &b] {
            let ring = ring.borrow();
            assert_eq!(ring.len(), 2);
            let kinds: Vec<&str> = ring.events().map(|(_, e)| e.kind()).collect();
            assert_eq!(kinds, ["job_arrived", "queue_depth"]);
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut ring = RingBuffer::new(2);
        for depth in 0..5u32 {
            ring.on_event(SimTime::new(depth as f64), &TraceEvent::QueueDepthSampled { depth });
        }
        assert_eq!(ring.total_seen(), 5);
        let depths: Vec<u32> = ring
            .events()
            .map(|(_, e)| match e {
                TraceEvent::QueueDepthSampled { depth } => *depth,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(depths, [3, 4]);
    }

    #[test]
    fn jsonl_lines_are_wellformed() {
        let mut w = JsonlWriter::new(Vec::new());
        w.on_event(SimTime::new(1.5), &ev());
        w.on_event(
            SimTime::new(2.0),
            &TraceEvent::ScalingDecision {
                stage: 2,
                cores: 4,
                queued_jobs: 3,
                delay_cost: 10.5,
                hire_cost: f64::NAN,
                choice: ScalingChoice::HirePublic,
            },
        );
        let out = String::from_utf8(w.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t\":1.5,\"kind\":\"job_arrived\",\"job\":7,\"size_units\":5.25,\"submitted_tu\":1.5}"
        );
        assert!(lines[1].contains("\"hire_cost\":null"));
        assert!(lines[1].contains("\"choice\":\"hire_public\""));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            // Balanced quotes: crude but catches missed escapes/commas.
            assert_eq!(l.matches('"').count() % 2, 0);
        }
    }

    #[test]
    fn every_variant_serialises() {
        let events = [
            TraceEvent::JobArrived { job: 1, size_units: 2.0, submitted_tu: 0.0 },
            TraceEvent::JobStageAdvanced { job: 1, stage: 0, shards: 4, cores: 2 },
            TraceEvent::JobCompleted { job: 1, latency_tu: 3.0, reward: 4.0, core_stages: 8.0 },
            TraceEvent::SloViolation { job: 1, latency_tu: 30.0, target_tu: 26.0 },
            TraceEvent::SubtaskDispatched {
                job: 1,
                stage: 0,
                vm: 2,
                cores: 2,
                waited_tu: 0.5,
                busy_tu: 1.5,
            },
            TraceEvent::SubtaskDone { job: 1, stage: 0, vm: 2 },
            TraceEvent::VmHired { vm: 2, tier: 1, cores: 2 },
            TraceEvent::VmBooted { vm: 2, cores: 2 },
            TraceEvent::VmReshaped { vm: 2, tier: 0, cores_from: 2, cores_to: 4 },
            TraceEvent::VmReleased { vm: 2, tier: 1, cores: 2 },
            TraceEvent::ScalingDecision {
                stage: 1,
                cores: 2,
                queued_jobs: 5,
                delay_cost: 1.0,
                hire_cost: 2.0,
                choice: ScalingChoice::Wait,
            },
            TraceEvent::QueueDepthSampled { depth: 11 },
            TraceEvent::AdmissionDeferred { tenant: 3, jobs: 2, backlog: 2 },
            TraceEvent::AdmissionResumed { tenant: 3, jobs: 2, backlog: 0 },
            TraceEvent::TierSettled { tier: 0, cost: 100.0, core_tu: 20.0 },
            TraceEvent::RunEnded { events_dispatched: 12345 },
        ];
        let mut w = JsonlWriter::new(Vec::new());
        for e in &events {
            w.on_event(SimTime::new(0.0), e);
        }
        let out = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(out.lines().count(), events.len());
        for (line, e) in out.lines().zip(&events) {
            assert!(line.contains(&format!("\"kind\":\"{}\"", e.kind())), "{line}");
        }
    }

    #[test]
    fn tenant_stamped_writer_injects_field_after_t() {
        let mut w = JsonlWriter::with_tenant(Vec::new(), 42);
        w.on_event(SimTime::new(1.5), &ev());
        let out = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(
            out.trim_end(),
            "{\"t\":1.5,\"tenant\":42,\"kind\":\"job_arrived\",\"job\":7,\"size_units\":5.25,\
             \"submitted_tu\":1.5}"
        );
    }

    #[test]
    fn closure_factories_build_per_session_observers() {
        // A closure is an ObserverFactory whose summary is the observer
        // itself; `build` must hand out independent instances.
        let factory = |_session: u64| RingBuffer::new(4);
        let mut a = ObserverFactory::build(&factory, 0);
        let b = ObserverFactory::build(&factory, 1);
        a.on_event(SimTime::new(0.0), &ev());
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 0);
        let summary = factory.finish(a);
        assert_eq!(summary.total_seen(), 1);
    }

    #[test]
    fn null_factory_is_inert() {
        let mut obs = NullObserverFactory.build(7);
        obs.on_event(SimTime::new(0.0), &ev());
        #[allow(clippy::let_unit_value)]
        let mut summary = NullObserverFactory.finish(obs);
        summary.merge(());
    }

    #[test]
    fn jsonl_latches_write_errors() {
        struct Failing;
        impl io::Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = JsonlWriter::new(Failing);
        w.on_event(SimTime::new(0.0), &ev());
        assert!(w.errored());
        w.on_event(SimTime::new(1.0), &ev());
    }
}
