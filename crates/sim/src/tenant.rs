//! Tenant identity for multi-tenant (fleet) simulations.
//!
//! A fleet run multiplexes many tenant platforms over one shared
//! [`Calendar`](crate::Calendar); every event carries the [`TenantId`] of
//! the platform that scheduled it so the engine can route it back and so
//! simultaneous events from different tenants interleave in a fixed,
//! reproducible order (see [`Calendar::schedule_for`]).
//!
//! [`Calendar::schedule_for`]: crate::Calendar::schedule_for

/// Identifies one tenant platform inside a fleet.
///
/// Tenant 0 is the implicit tenant of every single-tenant simulation:
/// [`Calendar::schedule`](crate::Calendar::schedule) tags events with
/// [`TenantId::SOLO`], which keeps single-tenant event ordering (and thus
/// every golden fixed-seed trace) bit-identical to the pre-fleet code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u16);

impl TenantId {
    /// The implicit tenant of a single-tenant simulation.
    pub const SOLO: TenantId = TenantId(0);

    /// The tenant ordinal as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u16> for TenantId {
    fn from(v: u16) -> Self {
        TenantId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_is_zero_and_displays_as_ordinal() {
        assert_eq!(TenantId::SOLO, TenantId(0));
        assert_eq!(TenantId(7).index(), 7);
        assert_eq!(TenantId(7).to_string(), "7");
        assert_eq!(TenantId::from(3u16), TenantId(3));
    }
}
