//! The pending-event set: a deterministic priority queue over [`SimTime`].
//!
//! Simultaneous events are delivered in the order they were scheduled
//! (FIFO tie-breaking via a monotonic sequence number), which makes whole
//! simulation runs bit-reproducible — a requirement inherited from the
//! paper's "repeat 10 times, report mean ± σ" methodology, where each
//! repetition must be a pure function of its seed.

use crate::tenant::TenantId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Sequence numbers occupy the low 48 bits of the heap key; the 16 bits
/// above them hold the scheduling tenant. 2⁴⁸ events per run is far
/// beyond any realistic simulation, and the split keeps the whole key a
/// single `u128` compare.
const SEQ_BITS: u32 = 48;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;

/// An event with the instant at which it fires.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Scheduling sequence number; earlier-scheduled events fire first
    /// among simultaneous same-tenant ones.
    pub seq: u64,
    /// The tenant that scheduled the event ([`TenantId::SOLO`] for
    /// single-tenant simulations).
    pub tenant: TenantId,
    /// The event payload.
    pub event: E,
}

impl<E> ScheduledEvent<E> {
    /// The heap ordering key, packed into one integer compare: fire-time
    /// bits in the high half, tenant then sequence number in the low
    /// half. `SimTime` is always finite and non-negative, so the
    /// IEEE-754 bit pattern of `at` orders exactly like the float itself
    /// — one branch-free `u128` comparison replaces a float compare plus
    /// a tie-break (the heap's sift loop is the simulator's single
    /// hottest comparison site). Among simultaneous events, lower
    /// tenants fire first and, within one tenant, scheduling order wins;
    /// for single-tenant runs (tenant always [`TenantId::SOLO`]) the key
    /// is numerically identical to the pre-fleet `time ‖ seq` packing,
    /// so event orders — and golden traces — are unchanged.
    #[inline]
    fn key(&self) -> u128 {
        debug_assert!(self.seq <= SEQ_MASK, "calendar sequence overflowed 48 bits");
        ((self.at.as_tu().to_bits() as u128) << 64)
            | ((self.tenant.0 as u128) << SEQ_BITS)
            | (self.seq & SEQ_MASK) as u128
    }
}

// BinaryHeap is a max-heap; reverse the ordering so the earliest instant
// (and, within an instant, the lowest sequence number) is popped first.
impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for ScheduledEvent<E> {}
impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for ScheduledEvent<E> {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// A deterministic event calendar.
///
/// ```
/// use scan_sim::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::new(2.0), "late");
/// cal.schedule(SimTime::new(1.0), "early");
/// cal.schedule(SimTime::new(1.0), "early-second");
///
/// assert_eq!(cal.pop().unwrap().event, "early");
/// assert_eq!(cal.pop().unwrap().event, "early-second");
/// assert_eq!(cal.pop().unwrap().event, "late");
/// assert!(cal.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct Calendar<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar with the clock at zero.
    pub fn new() -> Self {
        Calendar { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }

    /// Creates an empty calendar with pre-allocated capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        Calendar { heap: BinaryHeap::with_capacity(n), next_seq: 0, now: SimTime::ZERO }
    }

    /// The current simulation instant: the fire time of the last popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at instant `at`, tagged with the
    /// implicit single-tenant id ([`TenantId::SOLO`]).
    ///
    /// # Panics
    /// Panics if `at` is in the past — causality violations are programming
    /// errors, not recoverable conditions.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.schedule_for(at, TenantId::SOLO, event);
    }

    /// Schedules `event` to fire at instant `at` on behalf of `tenant`.
    ///
    /// Simultaneous events are delivered tenant-major: all of tenant 0's
    /// events at an instant, then tenant 1's, and so on — with FIFO
    /// scheduling order within each tenant. This makes fleet interleaving
    /// a pure function of `(time, tenant, schedule order)`, independent
    /// of how tenants happened to be stepped.
    ///
    /// # Panics
    /// Panics if `at` is in the past — causality violations are programming
    /// errors, not recoverable conditions.
    pub fn schedule_for(&mut self, at: SimTime, tenant: TenantId, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({} < now {})",
            at.as_tu(),
            self.now.as_tu()
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, tenant, event });
    }

    /// Pops the next event in (time, schedule-order) order and advances the
    /// clock to its fire time. Returns `None` when the calendar is empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now);
        self.now = ev.at;
        Some(ev)
    }

    /// Pops the next event *and every event simultaneous with it* into
    /// `out` (cleared first), in (time, schedule-order) order, advancing
    /// the clock once. Returns the number of events popped (zero when the
    /// calendar is empty).
    ///
    /// Handlers that schedule new events at the popped instant while the
    /// batch is being processed stay correctly ordered: the new events get
    /// higher sequence numbers than everything in the batch, so the next
    /// `pop_batch` at the same instant delivers them after the batch —
    /// exactly where one-at-a-time popping would have placed them.
    pub fn pop_batch(&mut self, out: &mut Vec<ScheduledEvent<E>>) -> usize {
        out.clear();
        let Some(first) = self.heap.pop() else {
            return 0;
        };
        debug_assert!(first.at >= self.now);
        self.now = first.at;
        let at = first.at;
        out.push(first);
        while self.heap.peek().is_some_and(|e| e.at == at) {
            out.push(self.heap.pop().expect("peeked non-empty"));
        }
        out.len()
    }

    /// The fire time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostic counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Pre-allocates room for at least `additional` more pending events,
    /// so a simulation's steady-state backlog never re-heapifies mid-run.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Drops every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(3.0), 3u32);
        cal.schedule(SimTime::new(1.0), 1);
        cal.schedule(SimTime::new(2.0), 2);
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100u32 {
            cal.schedule(SimTime::new(5.0), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(1.5), ());
        cal.schedule(SimTime::new(4.0), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::new(1.5));
        cal.pop();
        assert_eq!(cal.now(), SimTime::new(4.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(2.0), ());
        cal.pop();
        cal.schedule(SimTime::new(1.0), ());
    }

    #[test]
    fn simultaneous_events_are_tenant_major() {
        let mut cal = Calendar::new();
        // Schedule in scrambled tenant order at one instant.
        cal.schedule_for(SimTime::new(2.0), TenantId(1), 10u32);
        cal.schedule_for(SimTime::new(2.0), TenantId(0), 0);
        cal.schedule_for(SimTime::new(2.0), TenantId(2), 20);
        cal.schedule_for(SimTime::new(2.0), TenantId(1), 11);
        cal.schedule_for(SimTime::new(2.0), TenantId(0), 1);
        let order: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![0, 1, 10, 11, 20]);
    }

    #[test]
    fn tenant_ordering_yields_to_time() {
        let mut cal = Calendar::new();
        cal.schedule_for(SimTime::new(1.0), TenantId(5), 50u32);
        cal.schedule_for(SimTime::new(2.0), TenantId(0), 0);
        assert_eq!(cal.pop().unwrap().event, 50);
        assert_eq!(cal.pop().unwrap().event, 0);
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(7.0), ());
        assert_eq!(cal.peek_time(), Some(SimTime::new(7.0)));
        assert_eq!(cal.now(), SimTime::ZERO);
        assert_eq!(cal.len(), 1);
    }

    #[test]
    fn clear_empties_but_keeps_clock() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::new(1.0), ());
        cal.schedule(SimTime::new(2.0), ());
        cal.pop();
        cal.clear();
        assert!(cal.is_empty());
        assert_eq!(cal.now(), SimTime::new(1.0));
        assert_eq!(cal.scheduled_total(), 2);
    }

    proptest! {
        /// Whatever order events are scheduled in, they pop in
        /// non-decreasing time order, and equal times pop in scheduling
        /// order.
        #[test]
        fn prop_pop_order_is_sorted_and_stable(times in proptest::collection::vec(0.0f64..100.0, 1..200)) {
            let mut cal = Calendar::new();
            for (i, t) in times.iter().enumerate() {
                cal.schedule(SimTime::new(*t), i);
            }
            let mut last = (SimTime::ZERO, 0usize);
            let mut first = true;
            let mut popped = 0;
            while let Some(ev) = cal.pop() {
                if !first {
                    prop_assert!(ev.at >= last.0);
                    if ev.at == last.0 {
                        prop_assert!(ev.event > last.1, "FIFO violated among ties");
                    }
                }
                last = (ev.at, ev.event);
                first = false;
                popped += 1;
            }
            prop_assert_eq!(popped, times.len());
        }
    }
}
