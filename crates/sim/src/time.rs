//! Virtual time: instants ([`SimTime`]) and spans ([`SimDuration`]).
//!
//! The paper measures everything in abstract *time units* (TU): the
//! simulation horizon is 10 000 TU, inter-arrival means are 2.0–3.0 TU and
//! the VM reshape penalty is 30 s = 0.5 TU. Both types wrap an `f64` but are
//! kept distinct so that instants and spans cannot be mixed up, and both are
//! totally ordered (NaN is rejected at construction) so they can key the
//! event calendar.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in time units since the run started.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

/// A span of simulated time, in time units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant `tu` time units after the epoch.
    ///
    /// # Panics
    /// Panics if `tu` is NaN or negative: the calendar relies on a total
    /// order over instants, and simulated time never runs backwards.
    pub fn new(tu: f64) -> Self {
        assert!(tu.is_finite() && tu >= 0.0, "SimTime must be finite and non-negative, got {tu}");
        SimTime(tu)
    }

    /// The raw number of time units since the epoch.
    #[inline]
    pub fn as_tu(self) -> f64 {
        self.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since called with a later instant ({} > {})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The span from `earlier` to `self`, clamped to zero if `earlier` is
    /// in the future (useful for estimators fed with optimistic forecasts).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a span of `tu` time units.
    ///
    /// # Panics
    /// Panics if `tu` is NaN or negative.
    pub fn new(tu: f64) -> Self {
        assert!(
            tu.is_finite() && tu >= 0.0,
            "SimDuration must be finite and non-negative, got {tu}"
        );
        SimDuration(tu)
    }

    /// Creates a span, clamping negative or non-finite inputs to zero.
    ///
    /// Estimators occasionally produce slightly negative values from
    /// regression extrapolation (the paper's stage 2 has `b_2 = -0.53`);
    /// this constructor is the sanctioned way to feed those into the clock.
    pub fn clamped(tu: f64) -> Self {
        if tu.is_finite() && tu > 0.0 {
            SimDuration(tu)
        } else {
            SimDuration(0.0)
        }
    }

    /// The raw number of time units in the span.
    #[inline]
    pub fn as_tu(self) -> f64 {
        self.0
    }

    /// True if the span is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

// --- total order -----------------------------------------------------------
// NaN is excluded at construction, so `partial_cmp` can never fail; we
// implement Eq/Ord manually to make both types usable as calendar keys.

impl Eq for SimTime {}
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // scan-lint: allow(float-ord) -- NaN rejected at construction; total_cmp reorders ±0.0
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}
impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for SimDuration {}
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> Ordering {
        // scan-lint: allow(float-ord) -- NaN rejected at construction; total_cmp reorders ±0.0
        self.0.partial_cmp(&other.0).expect("SimDuration is never NaN")
    }
}
impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// --- arithmetic -------------------------------------------------------------

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::new(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::new(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::new(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} TU", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} TU", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration_advances() {
        let t = SimTime::new(1.5) + SimDuration::new(2.25);
        assert_eq!(t.as_tu(), 3.75);
    }

    #[test]
    fn since_measures_span() {
        let a = SimTime::new(2.0);
        let b = SimTime::new(5.5);
        assert_eq!(b.since(a).as_tu(), 3.5);
        assert_eq!((b - a).as_tu(), 3.5);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn since_rejects_backwards_span() {
        let _ = SimTime::new(1.0).since(SimTime::new(2.0));
    }

    #[test]
    fn saturating_since_clamps() {
        let d = SimTime::new(1.0).saturating_since(SimTime::new(2.0));
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_time_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_rejected() {
        let _ = SimDuration::new(-0.1);
    }

    #[test]
    fn clamped_duration_tolerates_regression_noise() {
        assert_eq!(SimDuration::clamped(-0.53), SimDuration::ZERO);
        assert_eq!(SimDuration::clamped(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::clamped(2.0).as_tu(), 2.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime::new(3.0), SimTime::new(1.0), SimTime::new(2.0)];
        v.sort();
        assert_eq!(v, vec![SimTime::new(1.0), SimTime::new(2.0), SimTime::new(3.0)]);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::new(4.0) * 0.5 + SimDuration::new(1.0);
        assert_eq!(d.as_tu(), 3.0);
        assert_eq!(SimDuration::new(6.0) / SimDuration::new(2.0), 3.0);
        let total: SimDuration =
            vec![SimDuration::new(1.0), SimDuration::new(2.5)].into_iter().sum();
        assert_eq!(total.as_tu(), 3.5);
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(SimTime::new(1.0).max(SimTime::new(2.0)), SimTime::new(2.0));
        assert_eq!(SimTime::new(1.0).min(SimTime::new(2.0)), SimTime::new(1.0));
        assert_eq!(SimDuration::new(1.0).max(SimDuration::new(2.0)), SimDuration::new(2.0));
        assert_eq!(SimDuration::new(1.0).min(SimDuration::new(2.0)), SimDuration::new(1.0));
    }
}
