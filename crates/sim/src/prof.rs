//! A lightweight wall-clock self-profiler.
//!
//! [`scope!`](crate::prof::scope) opens an RAII span named by a `&'static
//! str`; nested spans form a call tree per thread, accumulated in a
//! thread-local arena (no allocation after the first visit to a call
//! site, no locks, no syscalls beyond `Instant::now`). Profiling is off
//! by default — a disabled scope is one relaxed atomic load and a branch
//! — and is switched on process-wide with [`enable`] before the run.
//!
//! Rayon-parallel runs reuse the observer layer's factory/summary idea:
//! each worker thread calls [`reset_thread`] before its session and
//! [`take_summary`] after; the `Send` summaries then fold across threads
//! via [`Merge`] (frames match by path). [`ProfSummary::write_table`]
//! prints a sorted self/total table and
//! [`ProfSummary::write_collapsed`] emits collapsed-stack lines that
//! flamegraph tooling consumes directly (`path;leaf self_us`).
//!
//! Wall-clock numbers are inherently non-deterministic; everything else
//! in the platform's observability stack (traces, metrics) stays
//! bit-identical whether or not the profiler runs.

use std::cell::RefCell;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
// scan-lint: allow(wall-clock) -- the profiler measures the simulator, never feeds it.
use std::time::Instant;

use crate::trace::Merge;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the profiler on (process-wide). Call once, before the sessions
/// whose wall-clock breakdown you want.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether spans currently record.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One node of a thread's span tree.
#[derive(Debug, Clone)]
struct Node {
    name: &'static str,
    parent: usize,
    children: Vec<usize>,
    total_ns: u64,
    count: u64,
}

#[derive(Debug, Default)]
struct ThreadProfile {
    /// Arena of tree nodes; index 0 is the synthetic root.
    nodes: Vec<Node>,
    /// Index of the currently open span (0 = at the root).
    current: usize,
    sessions: u64,
}

impl ThreadProfile {
    fn reset(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node { name: "", parent: 0, children: Vec::new(), total_ns: 0, count: 0 });
        self.current = 0;
        self.sessions = 0;
    }

    fn child(&mut self, name: &'static str) -> usize {
        let cur = self.current;
        // Call sites are few; a linear scan over the children beats any
        // hashing at this scale (and `&'static str` comparison is cheap —
        // same literal usually means pointer equality).
        if let Some(&c) = self.nodes[cur].children.iter().find(|&&c| {
            let n = self.nodes[c].name;
            std::ptr::eq(n.as_ptr(), name.as_ptr()) || n == name
        }) {
            return c;
        }
        let id = self.nodes.len();
        self.nodes.push(Node { name, parent: cur, children: Vec::new(), total_ns: 0, count: 0 });
        self.nodes[cur].children.push(id);
        id
    }
}

thread_local! {
    static PROFILE: RefCell<ThreadProfile> = RefCell::new({
        let mut p = ThreadProfile::default();
        p.reset();
        p
    });
}

/// Clears this thread's accumulated spans. Call at the start of each
/// session (one session = one rayon worker thread at a time, so the
/// thread-local tree is never shared).
pub fn reset_thread() {
    if !is_enabled() {
        return;
    }
    PROFILE.with(|p| p.borrow_mut().reset());
}

/// An open profiling span; closing (dropping) it adds the elapsed wall
/// time to its call-tree node. Inert unless [`enable`] was called.
pub struct Scope {
    // scan-lint: allow(wall-clock) -- the profiler measures the simulator, never feeds it.
    start: Option<Instant>,
}

impl Scope {
    /// Opens a span named `name` under the currently open span.
    #[inline]
    pub fn enter(name: &'static str) -> Scope {
        if !is_enabled() {
            return Scope { start: None };
        }
        PROFILE.with(|p| {
            let mut p = p.borrow_mut();
            let id = p.child(name);
            p.current = id;
        });
        // scan-lint: allow(wall-clock) -- the profiler measures the simulator, never feeds it.
        Scope { start: Some(Instant::now()) }
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed().as_nanos() as u64;
            PROFILE.with(|p| {
                let mut p = p.borrow_mut();
                let cur = p.current;
                p.nodes[cur].total_ns += elapsed;
                p.nodes[cur].count += 1;
                p.current = p.nodes[cur].parent;
            });
        }
    }
}

/// Opens an RAII profiling span for the rest of the enclosing block:
/// `scan_sim::prof::scope!("dispatch");`.
#[macro_export]
macro_rules! prof_scope {
    ($name:literal) => {
        let _prof_guard = $crate::prof::Scope::enter($name);
    };
}
pub use crate::prof_scope as scope;

/// Wall-clock totals of one call-tree frame, identified by its path of
/// span names from the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameStat {
    /// Span names from the outermost scope to this one.
    pub path: Vec<&'static str>,
    /// Wall time spent in this frame including its children, ns.
    pub total_ns: u64,
    /// Times the frame was entered.
    pub count: u64,
}

/// A thread's (or a merged run's) profile: every observed frame plus the
/// number of sessions folded in.
#[derive(Debug, Clone, Default)]
pub struct ProfSummary {
    /// Frames in first-visit order (paths are unique).
    pub frames: Vec<FrameStat>,
    /// Sessions folded into these totals.
    pub sessions: u64,
}

/// Drains this thread's spans into a `Send` summary (and resets the
/// thread state). Returns an empty summary when profiling is disabled.
pub fn take_summary() -> ProfSummary {
    if !is_enabled() {
        return ProfSummary::default();
    }
    PROFILE.with(|p| {
        let mut p = p.borrow_mut();
        let mut frames = Vec::new();
        // Depth-first, children in creation order, so the flat list is
        // stable for a given execution.
        let mut stack: Vec<(usize, Vec<&'static str>)> =
            p.nodes[0].children.iter().rev().map(|&c| (c, Vec::new())).collect();
        while let Some((id, prefix)) = stack.pop() {
            let node = &p.nodes[id];
            let mut path = prefix.clone();
            path.push(node.name);
            for &c in node.children.iter().rev() {
                stack.push((c, path.clone()));
            }
            frames.push(FrameStat { path, total_ns: node.total_ns, count: node.count });
        }
        let sessions = p.sessions.max(1);
        p.reset();
        ProfSummary { frames, sessions }
    })
}

impl ProfSummary {
    /// Self time of frame `i`: total minus the children's totals.
    fn self_ns(&self, i: usize) -> u64 {
        let parent = &self.frames[i];
        let child_total: u64 = self
            .frames
            .iter()
            .filter(|f| {
                f.path.len() == parent.path.len() + 1
                    && f.path[..parent.path.len()] == parent.path[..]
            })
            .map(|f| f.total_ns)
            .sum();
        parent.total_ns.saturating_sub(child_total)
    }

    /// Writes a table of frames sorted by self time (descending):
    /// `self_ms  total_ms  count  path`.
    pub fn write_table<W: Write>(&self, mut w: W) -> io::Result<()> {
        let mut rows: Vec<(u64, usize)> =
            (0..self.frames.len()).map(|i| (self.self_ns(i), i)).collect();
        rows.sort_by(|a, b| {
            b.0.cmp(&a.0).then_with(|| self.frames[a.1].path.cmp(&self.frames[b.1].path))
        });
        writeln!(w, "{:>12} {:>12} {:>10}  span", "self_ms", "total_ms", "count")?;
        for (self_ns, i) in rows {
            let f = &self.frames[i];
            writeln!(
                w,
                "{:>12.3} {:>12.3} {:>10}  {}",
                self_ns as f64 / 1e6,
                f.total_ns as f64 / 1e6,
                f.count,
                f.path.join(";"),
            )?;
        }
        Ok(())
    }

    /// Writes flamegraph-compatible collapsed stacks: one
    /// `outer;inner;leaf <self_us>` line per frame with nonzero self
    /// time, sorted lexicographically by path.
    pub fn write_collapsed<W: Write>(&self, mut w: W) -> io::Result<()> {
        let mut rows: Vec<(Vec<&'static str>, u64)> = (0..self.frames.len())
            .map(|i| (self.frames[i].path.clone(), self.self_ns(i)))
            .filter(|(_, s)| *s > 0)
            .collect();
        rows.sort();
        for (path, self_ns) in rows {
            writeln!(w, "{} {}", path.join(";"), self_ns / 1_000)?;
        }
        Ok(())
    }
}

impl Merge for ProfSummary {
    /// Folds another thread's (or repetition's) profile in: frames match
    /// by path and add; unseen frames append.
    fn merge(&mut self, other: Self) {
        for of in other.frames {
            if let Some(f) = self.frames.iter_mut().find(|f| f.path == of.path) {
                f.total_ns += of.total_ns;
                f.count += of.count;
            } else {
                self.frames.push(of);
            }
        }
        self.sessions += other.sessions;
    }
}

/// Marks one completed session on this thread (feeds the summary's
/// session count so per-session averages are possible downstream).
pub fn mark_session() {
    if !is_enabled() {
        return;
    }
    PROFILE.with(|p| p.borrow_mut().sessions += 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ENABLED flag is process-wide, so every test that flips it runs
    // in this one test body (Rust runs tests in threads of one process).
    #[test]
    fn spans_accumulate_into_a_tree_and_summaries_merge() {
        // Disabled: scopes are inert, summary is empty.
        let s = {
            crate::prof::scope!("never");
            take_summary()
        };
        assert!(s.frames.is_empty());

        enable();
        reset_thread();
        {
            crate::prof::scope!("outer");
            for _ in 0..3 {
                crate::prof::scope!("inner");
            }
        }
        mark_session();
        let a = take_summary();
        assert_eq!(a.sessions, 1);
        let outer = a.frames.iter().find(|f| f.path == ["outer"]).expect("outer frame");
        assert_eq!(outer.count, 1);
        let inner = a.frames.iter().find(|f| f.path == ["outer", "inner"]).expect("inner frame");
        assert_eq!(inner.count, 3);
        assert!(outer.total_ns >= inner.total_ns, "parent includes child time");

        // A second "thread": same shape, merge folds by path.
        reset_thread();
        {
            crate::prof::scope!("outer");
            crate::prof::scope!("inner");
        }
        mark_session();
        let b = take_summary();
        let mut merged = a.clone();
        Merge::merge(&mut merged, b);
        assert_eq!(merged.sessions, 2);
        let inner = merged.frames.iter().find(|f| f.path == ["outer", "inner"]).unwrap();
        assert_eq!(inner.count, 4);

        // Outputs render and the collapsed form is parseable.
        let mut table = Vec::new();
        merged.write_table(&mut table).unwrap();
        let table = String::from_utf8(table).unwrap();
        assert!(table.contains("outer;inner"));
        let mut collapsed = Vec::new();
        merged.write_collapsed(&mut collapsed).unwrap();
        for line in String::from_utf8(collapsed).unwrap().lines() {
            let (stack, n) = line.rsplit_once(' ').expect("stack <us>");
            assert!(!stack.is_empty());
            let _: u64 = n.parse().expect("numeric self time");
        }
    }
}
