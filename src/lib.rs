//! # SCAN — facade crate
//!
//! Re-exports the whole SCAN workspace behind one dependency, so downstream
//! users (and this repo's `examples/` and `tests/`) can write
//! `use scan::platform::Session` instead of depending on seven crates.
//!
//! The workspace reproduces *SCAN: A Smart Application Platform for
//! Empowering Parallelizations of Big Genomic Data Analysis in Clouds*
//! (Xing, Jie, Miller — ICPP 2015). See `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Discrete-event simulation kernel (clock, calendar, RNG, statistics).
pub use scan_sim as sim;

/// Knowledge base: triple store, ontology, SPARQL-subset engine, regression.
pub use scan_kb as kb;

/// Genomic data substrate: FASTQ/BAM/VCF models, sharders, toy pipeline.
pub use scan_genomics as genomics;

/// Hybrid cloud model: tiers, instances, VM lifecycle, billing.
pub use scan_cloud as cloud;

/// Workload model: GATK stage models, arrivals, reward functions.
pub use scan_workload as workload;

/// Scheduler: queues, estimators, delay cost, scaling/allocation policies.
pub use scan_sched as sched;

/// The SCAN platform facade: broker + scheduler + workers + sessions.
pub use scan_platform as platform;

/// Columnar in-process trace store: ingest, aggregation queries, export.
pub use scan_tracestore as tracestore;
