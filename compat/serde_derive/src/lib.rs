//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline serde stand-in.
//!
//! The workspace derives these traits on config and metrics types for
//! downstream consumers, but nothing in-tree performs serialization (there
//! is no `serde_json` here), so the derives can legitimately expand to
//! nothing: no impls are ever looked up.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs. Registers the `#[serde(...)]`
/// helper attribute (as real serde does) so field annotations like
/// `#[serde(default)]` parse even though the expansion ignores them.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs. Registers the `#[serde(...)]`
/// helper attribute (as real serde does) so field annotations like
/// `#[serde(default)]` parse even though the expansion ignores them.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
