//! Offline stand-in for `serde`: the trait names exist so `use serde::
//! {Serialize, Deserialize}` and `#[derive(Serialize, Deserialize)]`
//! compile, but the derives are no-ops and nothing in the workspace
//! serializes (there is no `serde_json` offline). When real serialization
//! is wanted, swap this path dependency back to registry serde — the
//! source-level API is a strict subset.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in this subset).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in this subset).
pub trait Deserialize<'de> {}
