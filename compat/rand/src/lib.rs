//! Offline stand-in for the `rand` crate, implementing exactly the API
//! surface this workspace uses (`StdRng`, `RngCore`, `SeedableRng`, `Rng`
//! with `gen::<f64>()` / `gen_range`), so the workspace builds without
//! network access to a crate registry.
//!
//! `StdRng` here is xoshiro256++ (Blackman & Vigna), a small, fast,
//! well-tested generator. It is **not** the upstream `StdRng` (ChaCha12),
//! so absolute random sequences differ from upstream rand — within this
//! repository that is irrelevant: every experiment is a pure function of
//! its seed through this one implementation, which is vendored and
//! therefore stable forever.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible RNG operations (infallible in this subset).
#[derive(Debug, Clone)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core trait for random-number generators.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible fill (never fails here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanded via SplitMix64
    /// (the same expansion upstream rand documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let z = splitmix64(&mut state);
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampling of a type from uniform random bits (the `Standard`
/// distribution of upstream rand, reduced to what the workspace draws).
pub trait SampleUniformBits: Sized {
    /// Draws one value from `rng`.
    fn sample_bits<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniformBits for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits — the same
    /// construction upstream rand uses for `Standard` on `f64`.
    #[inline]
    fn sample_bits<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniformBits for u64 {
    #[inline]
    fn sample_bits<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleUniformBits for u32 {
    #[inline]
    fn sample_bits<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// A range a value can be uniformly drawn from.
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draws one value in the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32, u16, u8);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_bits(rng)
    }
}

/// Convenience extension over [`RngCore`] (the subset of upstream `Rng`
/// the workspace calls).
pub trait Rng: RngCore {
    /// Draws a value of `T` from its canonical uniform distribution.
    #[inline]
    fn gen<T: SampleUniformBits>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_bits(self)
    }

    /// Draws uniformly from a range.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one degenerate seed of the xoshiro
            // family; nudge it to the SplitMix64 expansion of 0.
            if s == [0; 4] {
                let mut state = 0u64;
                for slot in &mut s {
                    *slot = super::splitmix64(&mut state);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..16).map(|_| StdRng::seed_from_u64(8).next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&x));
            let y = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&y));
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::from_seed([0u8; 32]);
        assert_ne!(r.next_u64(), 0);
    }
}
