//! Offline stand-in for `criterion` covering the subset the bench suite
//! uses: `Criterion::default().sample_size(..).warm_up_time(..)
//! .measurement_time(..)`, `bench_function`, `benchmark_group` (with
//! `throughput`, `bench_with_input`, `finish`), `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Measurement is real: each benchmark warms up for `warm_up_time`, then
//! takes `sample_size` samples sized to fill `measurement_time`, and
//! reports min/mean/max per-iteration wall time (plus throughput when
//! configured). There is no statistical regression machinery or HTML
//! report — numbers go to stdout, which is what an offline CI can diff.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement configuration plus the entry point benches receive.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Far smaller than upstream's 100 × 3s defaults: this shim exists
        // so `cargo bench` finishes offline in sane time, not to publish
        // statistics.
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget the samples should roughly fill.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs a single benchmark under this configuration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, self.sample_size, self.warm_up_time, self.measurement_time, &mut f);
        self
    }

    /// Opens a named group sharing this configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the throughput used to report rates for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs `f` as `group-name/bench-name`.
    pub fn bench_function<F>(&mut self, name: impl ToString, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.to_string());
        run_one(
            &full,
            self.throughput,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Runs `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_one(
            &full,
            self.throughput,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (upstream flushes reports here; we print per-bench).
    pub fn finish(self) {}
}

/// Identifier for one parameterised benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    result: Option<Samples>,
}

struct Samples {
    /// Mean seconds per iteration, one entry per sample.
    per_iter: Vec<f64>,
    iters_total: u64,
}

impl Bencher {
    /// Measures `routine`, called repeatedly; its return value is
    /// black-boxed so the work is not optimised away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget elapses (at least once),
        // and learn a per-iteration estimate while doing so.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample so `sample_size` samples fill measurement_time.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / est_per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let mut per_iter = Vec::with_capacity(self.sample_size);
        let mut iters_total = 0u64;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
            iters_total += iters_per_sample;
        }
        self.result = Some(Samples { per_iter, iters_total });
    }
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher { sample_size, warm_up_time, measurement_time, result: None };
    f(&mut b);
    let Some(s) = b.result else {
        println!("{name:<50} (no measurement: Bencher::iter never called)");
        return;
    };
    let min = s.per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = s.per_iter.iter().copied().fold(0.0f64, f64::max);
    let mean = s.per_iter.iter().sum::<f64>() / s.per_iter.len() as f64;
    let mut line =
        format!("{name:<50} time: [{} {} {}]", fmt_time(min), fmt_time(mean), fmt_time(max));
    if let Some(t) = throughput {
        let (units, suffix) = match t {
            Throughput::Bytes(n) => (n as f64, "B/s"),
            Throughput::Elements(n) => (n as f64, "elem/s"),
        };
        let _ = write!(line, "  thrpt: {} {suffix}", fmt_rate(units / mean));
    }
    let _ = write!(line, "  ({} iters)", s.iters_total);
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

/// Declares a bench group function, with or without a `config` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        c.bench_function("compat/smoke", |b| b.iter(|| black_box(3u64).pow(7)));
        let mut g = c.benchmark_group("compat-group");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter("lbl"), &(), |b, _| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").label, "p");
    }
}
