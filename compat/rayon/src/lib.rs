//! Offline stand-in for `rayon`, implementing the parallel-iterator
//! subset this workspace uses (`par_iter`, `into_par_iter`, `map`,
//! `collect`) on top of `std::thread::scope`.
//!
//! Work is distributed through a shared atomic cursor, so wildly uneven
//! item costs (the sweep's heavy always-scale cells next to cheap
//! never-scale cells) still load-balance across cores, and results are
//! reassembled in input order — the "same result as sequential" contract
//! real rayon gives and the workspace's determinism tests rely on.
//!
//! `map`/`collect` are inherent methods rather than a `ParallelIterator`
//! trait: every call site reaches them through the concrete types the
//! prelude conversions return, so a trait adds nothing here.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The rayon-compatible prelude: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads to use for `n` items. Like real rayon's
/// global pool, `RAYON_NUM_THREADS` overrides the machine's parallelism
/// (`RAYON_NUM_THREADS=1` forces the sequential path — the workspace's
/// determinism tests and docs rely on this knob existing).
fn thread_count(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let configured = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t > 0);
    let threads = configured
        .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1));
    threads.min(n)
}

/// An owned, not-yet-consumed parallel iterator over `items`.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator; the closure runs on worker threads.
pub struct ParMap<'a, T, O> {
    items: Vec<T>,
    f: Box<dyn Fn(T) -> O + Sync + 'a>,
}

/// Conversion into a parallel iterator (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Borrowing conversion (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;
    /// A parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par!(usize, u64, u32, i32);

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<T: Send> ParIter<T> {
    /// Maps each element on a worker thread.
    pub fn map<'a, O, F>(self, f: F) -> ParMap<'a, T, O>
    where
        O: Send,
        F: Fn(T) -> O + Sync + 'a,
    {
        ParMap { items: self.items, f: Box::new(f) }
    }

    /// Collects the (unmapped) items in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<'a, T: Send + 'a, O: Send + 'a> ParMap<'a, T, O> {
    /// Chains another map; closures compose and run fused per item.
    pub fn map<O2, F>(self, f: F) -> ParMap<'a, T, O2>
    where
        O2: Send,
        F: Fn(O) -> O2 + Sync + 'a,
    {
        let g = self.f;
        ParMap { items: self.items, f: Box::new(move |x| f(g(x))) }
    }

    /// Runs the pipeline across threads and collects results in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        run_parallel(self.items, &self.f).into_iter().collect()
    }
}

/// Applies `f` to every item on a scoped thread pool, returning results in
/// input order.
fn run_parallel<T: Send, O: Send>(items: Vec<T>, f: &(dyn Fn(T) -> O + Sync)) -> Vec<O> {
    let n = items.len();
    let workers = thread_count(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Items move through Option slots so worker threads can claim them by
    // index via the shared cursor without cloning.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, O)>> = Vec::with_capacity(workers);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let slots = &slots;
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut out: Vec<(usize, O)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let item =
                        slots[i].lock().expect("slot lock poisoned").take().expect("claimed once");
                    out.push((i, f(item)));
                }
                out
            }));
        }
        for h in handles {
            per_worker.push(h.join().expect("rayon-compat worker panicked"));
        }
    });

    let mut ordered: Vec<Option<O>> = (0..n).map(|_| None).collect();
    for (i, o) in per_worker.into_iter().flatten() {
        ordered[i] = Some(o);
    }
    ordered.into_iter().map(|o| o.expect("every index produced")).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(xs, (0..10_000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data: Vec<String> = (0..100).map(|i| format!("item-{i}")).collect();
        let lens: Vec<usize> = data.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, data.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps_compose() {
        let xs: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x + 1).map(|x| x * 10).collect();
        assert_eq!(xs, vec![20, 30, 40]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still come back in order.
        let work = |i: u64| {
            let spins = if i.is_multiple_of(7) { 200_000 } else { 10 };
            (0..spins).fold(i, |a, b| a.wrapping_add(b % 13))
        };
        let par: Vec<u64> = (0..64u64).into_par_iter().map(work).collect();
        let seq: Vec<u64> = (0..64u64).map(work).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(none.is_empty());
        let one: Vec<u8> = vec![9u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![10]);
    }
}
