//! Offline stand-in for `proptest` covering the subset this workspace's
//! property tests use: the `proptest!` macro over `arg in strategy`
//! bindings, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, numeric
//! range strategies, character-class string strategies (`"[a-z]{1,8}"`),
//! tuple strategies, and `collection::{vec, btree_set}`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   debug representation instead of a minimised counterexample.
//! * **Deterministic generation.** Cases derive from a splitmix64 stream
//!   seeded by the test name, so failures reproduce exactly on re-run
//!   (upstream defaults to OS-random seeds plus a regression file).
//! * **256 cases per property** (upstream also runs 256 by default).

#![forbid(unsafe_code)]

pub mod strategy;

pub mod test_runner;

pub mod collection;

/// What `use proptest::prelude::*;` brings in.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Number of generated cases per property test.
pub const CASES: u32 = 256;

/// FNV-1a over the test name: a stable per-test base seed.
pub fn seed_for_test_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let base = $crate::seed_for_test_name(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            while accepted < $crate::CASES {
                // Give up if the prop_assume! rejection rate is hopeless,
                // mirroring upstream's "too many global rejects" error.
                if attempt > ($crate::CASES as u64) * 32 {
                    panic!(
                        "proptest '{}': too many rejected cases ({} accepted of {} attempts)",
                        stringify!($name), accepted, attempt,
                    );
                }
                let mut rng = $crate::test_runner::TestRng::new(base, attempt);
                attempt += 1;
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                )+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match result {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed (case seed {}/{}): {}\n  inputs: {}",
                            stringify!($name),
                            base,
                            attempt - 1,
                            msg,
                            format!(
                                concat!($(concat!(stringify!($arg), " = {:?}  ")),+),
                                $(&$arg),+
                            ),
                        );
                    }
                }
            }
        }
    )+};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(concat!("{:?} == {:?}: ", $($fmt)+), left, right),
            ));
        }
    }};
}

/// Discards the current case (not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            x in 3usize..17,
            y in -50i32..-10,
            z in 0u8..=4,
            f in 0.25f64..0.75,
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-50..-10).contains(&y));
            prop_assert!(z <= 4);
            prop_assert!((0.25..0.75).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn string_class_matches(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.bytes().all(|b| (b'a'..=b'c').contains(&b)));
        }

        #[test]
        fn vec_and_set_sizes(
            v in crate::collection::vec((0u32..6, 0.0f64..1.0), 0..9),
            s in crate::collection::btree_set(-100i32..100, 2..8),
        ) {
            prop_assert!(v.len() < 9);
            prop_assert!((2..8).contains(&s.len()));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..100) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::strategy::Strategy;
        let s = 1.0f64..2.0;
        let base = crate::seed_for_test_name("x");
        let a: Vec<f64> =
            (0..5).map(|i| s.generate(&mut crate::test_runner::TestRng::new(base, i))).collect();
        let b: Vec<f64> =
            (0..5).map(|i| s.generate(&mut crate::test_runner::TestRng::new(base, i))).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest 'failing_property' failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn failing_property(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        failing_property();
    }
}
