//! Value-generation strategies for the proptest stand-in.
//!
//! A [`Strategy`] here is just "something that can produce a value from a
//! [`TestRng`]" — no shrink trees. Ranges, range-inclusives, `&str`
//! character-class patterns, and tuples of strategies are covered, which
//! is the full surface the workspace's `proptest!` blocks use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Produces one value per call; the macro calls this once per argument
/// per case.
pub trait Strategy {
    /// Type of value this strategy generates.
    type Value;
    /// Generates a fresh value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide - self.start as $wide) as u64;
                (self.start as $wide + rng.below(span) as $wide) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide - lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide + rng.below(span + 1) as $wide) as $t
            }
        }
    )+};
}

impl_int_ranges! {
    u8 => i64, u16 => i64, u32 => i64, usize => i128, u64 => i128,
    i8 => i64, i16 => i64, i32 => i64, i64 => i128, isize => i128,
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.uniform01() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.uniform01() as f32) * (self.end - self.start)
    }
}

/// `&str` strategies are character-class patterns: `"[a-zA-Z0-9_]{1,30}"`.
///
/// Supported grammar (everything the workspace uses): one bracketed class
/// of literal characters and `x-y` ranges, followed by `{n}` or `{m,n}`.
/// Anything else panics with a pointer here, so a new pattern shows up as
/// a loud test error rather than silently wrong data.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
    }
}

/// Parses `[class]{m,n}` into (alphabet, min_len, max_len).
fn parse_class_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let unsupported = || -> ! {
        panic!(
            "unsupported string strategy pattern {pat:?}: the offline proptest \
             stand-in only understands \"[class]{{m,n}}\" (see compat/proptest)"
        )
    };
    let rest = pat.strip_prefix('[').unwrap_or_else(|| unsupported());
    let (class, counts) = rest.split_once(']').unwrap_or_else(|| unsupported());

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                unsupported();
            }
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        unsupported();
    }

    let counts =
        counts.strip_prefix('{').and_then(|c| c.strip_suffix('}')).unwrap_or_else(|| unsupported());
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok(), n.trim().parse().ok()),
        None => {
            let n = counts.trim().parse().ok();
            (n, n)
        }
    };
    match (min, max) {
        (Some(m), Some(n)) if m <= n => (alphabet, m, n),
        _ => unsupported(),
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(0xDEAD, 0)
    }

    #[test]
    fn int_ranges_cover_bounds_eventually() {
        let s = 0u8..=3;
        let mut seen = [false; 4];
        let mut r = rng();
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all values of a tiny range should appear");
    }

    #[test]
    fn negative_ranges_work() {
        let s = -1000i32..1000;
        let mut r = rng();
        for _ in 0..500 {
            let v = s.generate(&mut r);
            assert!((-1000..1000).contains(&v));
        }
    }

    #[test]
    fn class_pattern_parses() {
        let (alpha, m, n) = parse_class_pattern("[a-cXw-z_/]{2,7}");
        let expect: Vec<char> = vec!['a', 'b', 'c', 'X', 'w', 'x', 'y', 'z', '_', '/'];
        assert_eq!(alpha, expect);
        assert_eq!((m, n), (2, 7));
        let (_, m, n) = parse_class_pattern("[0-9]{4}");
        assert_eq!((m, n), (4, 4));
    }

    #[test]
    #[should_panic(expected = "unsupported string strategy pattern")]
    fn bad_pattern_is_loud() {
        "hello".generate(&mut rng());
    }

    #[test]
    fn tuples_compose() {
        let s = ("[a-z]{1,3}", 0u16..0x800, -1i32..4, 0i32..10, 0u8..=254, 0usize..100);
        let mut r = rng();
        let (a, b, c, d, e, f) = s.generate(&mut r);
        assert!((1..=3).contains(&a.len()));
        assert!(b < 0x800);
        assert!((-1..4).contains(&c));
        assert!((0..10).contains(&d));
        let _ = e;
        assert!(f < 100);
    }
}
