//! Deterministic RNG and case outcome types for the proptest stand-in.

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` — try another one.
    Reject(String),
    /// The property failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failing outcome with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejected (discarded) case with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Reject(r) => write!(f, "case rejected: {r}"),
            Self::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

/// Splitmix64 stream seeded from `(test-name hash, case index)`.
///
/// Each case gets an independent, reproducible stream: re-running a test
/// regenerates exactly the inputs that failed.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for case `case_index` of the test whose name hashed
    /// to `base_seed`.
    pub fn new(base_seed: u64, case_index: u64) -> Self {
        // Mix the case index in through one splitmix round so adjacent
        // cases don't share low-bit structure.
        let mut z = base_seed ^ case_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Self { state: z ^ (z >> 31) }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` from the top 53 bits.
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in `[0, n)`; `n` must be non-zero. Modulo sampling —
    /// the bias is negligible for test-sized ranges.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = TestRng::new(42, 0);
        let mut b = TestRng::new(42, 0);
        let mut c = TestRng::new(42, 1);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn uniform01_in_range() {
        let mut r = TestRng::new(7, 3);
        for _ in 0..1000 {
            let u = r.uniform01();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_bounds() {
        let mut r = TestRng::new(9, 9);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }
}
