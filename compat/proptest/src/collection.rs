//! Collection strategies: `vec` and `btree_set` with size ranges.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy producing a `Vec` of `size` elements drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Vec of values from `element`, with length in `size` (half-open, like
/// upstream's `SizeRange` from a `Range`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing a `BTreeSet` whose size lands in `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// BTreeSet of distinct values from `element`, with cardinality in `size`.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(size.start < size.end, "empty set size range");
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let target = self.size.start + rng.below(span) as usize;
        let mut out = BTreeSet::new();
        // Duplicates shrink the set, so keep drawing; cap the attempts in
        // case the element domain is smaller than the requested size.
        let mut attempts = 0usize;
        let max_attempts = 64 * target.max(1) + 64;
        while out.len() < target && attempts < max_attempts {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        assert!(
            out.len() >= self.size.start,
            "btree_set strategy could not reach minimum size {} (element domain too small?)",
            self.size.start,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_and_elements_in_range() {
        let s = vec(0u32..6, 0..60);
        let mut r = TestRng::new(1, 1);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v.len() < 60);
            assert!(v.iter().all(|&x| x < 6));
        }
    }

    #[test]
    fn vec_of_tuples() {
        let s = vec((1.0f64..10.0, 0.5f64..100.0), 2..20);
        let mut r = TestRng::new(2, 0);
        let v = s.generate(&mut r);
        assert!((2..20).contains(&v.len()));
    }

    #[test]
    fn set_respects_minimum() {
        let s = btree_set(-1000i32..1000, 2..40);
        let mut r = TestRng::new(3, 5);
        for _ in 0..50 {
            let set = s.generate(&mut r);
            assert!((2..40).contains(&set.len()));
        }
    }

    #[test]
    #[should_panic(expected = "could not reach minimum size")]
    fn impossible_set_is_loud() {
        // Only 2 distinct values but a minimum size of 10.
        let s = btree_set(0u8..2, 10..12);
        let mut r = TestRng::new(4, 0);
        let _ = s.generate(&mut r);
    }
}
