//! Quickstart: run one SCAN platform session end to end.
//!
//! Builds the paper's evaluation setup — a hybrid private/public cloud, a
//! knowledge base bootstrapped from GATK profiling traces, the
//! reward-driven scheduler — submits ~90 minutes of simulated pipeline
//! jobs, and prints the headline economics.
//!
//! Run with: `cargo run --release --example quickstart`

use scan::platform::config::{ScanConfig, VariableParams};
use scan::platform::session::run_session;
use scan::platform::sweep::run_replicated;
use scan::sched::scaling::ScalingPolicy;

fn main() {
    // A Table I cell: predictive scaling, best-constant allocation,
    // time-based reward, public cores at 50 CU/TU, one batch of jobs
    // roughly every 2.5 TU.
    let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.5), 42);
    cfg.fixed.sim_time_tu = 2_000.0;

    println!("SCAN quickstart: one 2,000 TU session\n");
    let m = run_session(&cfg, 0);
    println!("jobs submitted            : {}", m.jobs_submitted);
    println!(
        "pipeline runs completed   : {} ({:.1}%)",
        m.jobs_completed,
        100.0 * m.completion_rate()
    );
    println!("total reward              : {:>12.0} CU", m.total_reward);
    println!("total infrastructure cost : {:>12.0} CU", m.total_cost);
    println!("mean profit per run       : {:>12.1} CU", m.profit_per_run);
    println!("reward-to-cost ratio      : {:>12.2}", m.reward_to_cost);
    println!("mean pipeline latency     : {:>12.2} TU", m.mean_latency);
    println!("95th percentile latency   : {:>12.2} TU", m.p95_latency);
    println!("worker utilisation        : {:>12.2}", m.worker_utilisation);
    println!("public-tier core-TU share : {:>12.2}", m.public_core_tu_share);
    println!("workers hired             : {:>12}", m.vms_hired);

    // The paper's methodology: repeat with independent seeds, report
    // mean ± one standard deviation.
    println!("\nReplicated 5x (mean ± σ):");
    let r = run_replicated(&cfg, 5);
    println!(
        "profit per run  : {:>8.1} ± {:.1} CU",
        r.profit_per_run.mean(),
        r.profit_per_run.stddev()
    );
    println!(
        "reward-to-cost  : {:>8.2} ± {:.2}",
        r.reward_to_cost.mean(),
        r.reward_to_cost.stddev()
    );
    println!(
        "mean latency    : {:>8.2} ± {:.2} TU",
        r.mean_latency.mean(),
        r.mean_latency.stddev()
    );
}
