//! The SCAN knowledge base in action: ontology, SPARQL, profiling logs
//! and sharding advice.
//!
//! Reproduces §III-A.1's workflow: build the SCAN ontology (domain +
//! cloud + linker), ingest the paper's GATK1–GATK4 profiling instances,
//! query them with SPARQL (including the ranking query the Data Broker
//! issues), and ask for chunk-size advice for a 100 GB input.
//!
//! Run with: `cargo run --release --example knowledge_base`

use scan::kb::ontology::iri::SCAN_NS;
use scan::kb::{parse_query, KnowledgeBase, ProfileRecord};

fn main() {
    let mut kb = KnowledgeBase::new();

    // Before any profiling, advice falls back to the paper's 2 GB default.
    let advice = kb.advise_chunk("GATK", 100.0);
    println!(
        "uninformed advice for 100 GB: {} chunks of {} GB (informed: {})",
        advice.shards, advice.chunk_gb, advice.informed
    );

    // Ingest the paper's §III-A.1 knowledge-base expansion: GATK1..GATK4.
    for (size, etime) in [(10.0, 180.0), (5.0, 200.0), (20.0, 280.0), (4.0, 80.0)] {
        kb.ingest(&ProfileRecord {
            application: "GATK".into(),
            stage: 1,
            input_gb: size,
            threads: 8,
            ram_gb: 4.0,
            e_time: etime,
        });
    }
    println!("\ningested {} GATK profiling instances", kb.profile_count("GATK"));

    // The Data Broker's ranking query (the paper's SPARQL,§III-A.1(ii)),
    // ranked by execution time per GB.
    let query = parse_query(&format!(
        "PREFIX scan: <{SCAN_NS}>
         SELECT ?app ?size ?t WHERE {{
             ?app a scan:Application .
             ?app scan:inputFileSize ?size .
             ?app scan:eTime ?t .
         }} ORDER BY ASC(?t / ?size)"
    ))
    .expect("query parses");
    let results = query.execute(kb.ontology().store()).expect("query runs");
    println!("\nGATK instances ranked by eTime/inputFileSize:");
    for row in results.rows() {
        let app = row.get("app").unwrap().as_iri().unwrap();
        let size = row.get("size").unwrap().as_f64().unwrap();
        let t = row.get("t").unwrap().as_f64().unwrap();
        println!(
            "  {:<12} {:>5.0} GB  eTime {:>5.0}  ({:.1} TU/GB)",
            app.rsplit('#').next().unwrap(),
            size,
            t,
            t / size
        );
    }

    // Informed advice now mirrors the best-ranked observation.
    let advice = kb.advise_chunk("GATK", 100.0);
    println!(
        "\ninformed advice for 100 GB: {} chunks of {} GB on {} cores (informed: {})",
        advice.shards, advice.chunk_gb, advice.cpu, advice.informed
    );

    // The cloud side of the ontology answers deployment questions too.
    let q = parse_query(&format!(
        "PREFIX scan: <{SCAN_NS}>
         SELECT ?tier ?cost WHERE {{
             ?tier a scan:CloudTier .
             ?tier scan:costPerCoreTu ?cost .
         }} ORDER BY ?cost"
    ))
    .expect("parses");
    println!("\ncloud ontology tiers:");
    for row in q.execute(kb.ontology().store()).expect("runs").rows() {
        println!(
            "  {:<14} {} CU per core-TU",
            row.get("tier").unwrap().as_iri().unwrap().rsplit('#').next().unwrap(),
            row.get("cost").unwrap().as_f64().unwrap()
        );
    }

    // Stage-model learning: feed a profiling grid for stage 3 and recover
    // Table II's coefficients by regression.
    for d in [1.0, 3.0, 5.0, 7.0, 9.0] {
        for t in [1u32, 2, 4, 8, 16] {
            let e = 1.74 * d + 3.93; // Table II stage 3
            let time = 0.69 * e / t as f64 + 0.31 * e;
            kb.ingest(&ProfileRecord {
                application: "GATK".into(),
                stage: 3,
                input_gb: d,
                threads: t,
                ram_gb: 4.0,
                e_time: time,
            });
        }
    }
    let m = kb.stage_model("GATK", 3).expect("enough data");
    println!(
        "\nlearned stage-3 model: E(d) = {:.3}·d + {:.3}, Amdahl c = {:.3} (Table II: 1.74, 3.93, 0.69)",
        m.a, m.b, m.c
    );
}
