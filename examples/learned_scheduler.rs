//! The §VI future-work extension in action: the ε-greedy learned
//! allocation policy vs the published best-constant baseline.
//!
//! "We also plan to adopt learning algorithms to guide the Scheduler."
//! The learned policy runs in epochs: each replan period one candidate
//! plan (bandit arm) serves all arriving jobs; the epoch's realised profit
//! per run updates the arm. Arms are warm-started from the knowledge-base
//! model's predicted profits, so exploration refines the analytic ranking
//! instead of starting blind.
//!
//! Run with: `cargo run --release --example learned_scheduler`

use scan::platform::config::{ScanConfig, VariableParams};
use scan::platform::sweep::run_replicated;
use scan::sched::alloc::AllocationPolicy;
use scan::sched::scaling::ScalingPolicy;

fn main() {
    println!("Learned (ε-greedy) allocation vs the Table I policies");
    println!("(time-based reward, predictive scaling, 3 repetitions, 3,000 TU)\n");
    println!("{:>20} | {:>18} | {:>10} | {:>8}", "allocation", "profit/run (CU)", "r/c", "latency");
    println!("{}", "-".repeat(68));

    for allocation in [
        AllocationPolicy::BestConstant,
        AllocationPolicy::Greedy,
        AllocationPolicy::LongTerm,
        AllocationPolicy::LongTermAdaptive,
        AllocationPolicy::Learned,
    ] {
        let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.2), 99);
        cfg.variable.allocation = allocation;
        cfg.fixed.sim_time_tu = 3_000.0;
        let m = run_replicated(&cfg, 3);
        println!(
            "{:>20} | {:>8.1} ± {:>6.1} | {:>10.2} | {:>8.2}",
            allocation.name(),
            m.profit_per_run.mean(),
            m.profit_per_run.stddev(),
            m.reward_to_cost.mean(),
            m.mean_latency.mean(),
        );
    }

    println!("\nThe learned policy pays a small exploration tax early, then tracks the");
    println!("best arm; with drifting workloads (see tests/kb_feedback.rs) the online");
    println!("feedback is what keeps the ranking honest.");
}
