//! Compare the three horizontal-scaling policies across the load spectrum
//! — a miniature of Figure 4.
//!
//! Sweeps the mean inter-arrival interval from saturating (0.5 TU) to
//! quiet (1.5 TU) and prints mean profit per pipeline run for predictive,
//! always-scale and never-scale, 3 repetitions each.
//!
//! Run with: `cargo run --release --example scaling_comparison`

use scan::platform::config::{ScanConfig, VariableParams};
use scan::platform::sweep::run_replicated;
use scan::sched::scaling::ScalingPolicy;

fn main() {
    println!("Mean profit per pipeline run (CU) vs load, per scaling policy");
    println!("(time-based reward, public cores at 50 CU/TU, best-constant plans)\n");
    println!("{:>9} | {:>12} | {:>12} | {:>12}", "interval", "predictive", "always", "never");
    println!("{}", "-".repeat(56));

    for i in 0..=5 {
        let interval = 0.5 + 0.2 * i as f64;
        let mut row = format!("{interval:>9.1}");
        for scaling in
            [ScalingPolicy::Predictive, ScalingPolicy::AlwaysScale, ScalingPolicy::NeverScale]
        {
            let mut cfg = ScanConfig::new(VariableParams::fig4(scaling, interval), 7);
            cfg.fixed.sim_time_tu = 2_000.0;
            let m = run_replicated(&cfg, 3);
            row.push_str(&format!(" | {:>12.1}", m.profit_per_run.mean()));
        }
        println!("{row}");
    }

    println!("\nReading the table:");
    println!("  - at 0.5 TU the private tier saturates: never-scale lets queues grow");
    println!("    (profit collapses), always-scale buys public cores, predictive");
    println!("    weighs the Eq. 1 delay cost against the hire cost;");
    println!("  - at 1.5 TU the cluster is quiet and the policies converge.");
}
