//! The functional mini-GATK pipeline: real (synthetic) genomic data,
//! sharded by the Data Broker's rules, analysed end to end.
//!
//! This is the workload the platform *models*; here it actually runs:
//! generate a reference genome, plant ground-truth mutations, sequence the
//! mutated sample into FASTQ reads, shard the FASTQ on record boundaries
//! (§III-A.1(iii)), align with the k-mer aligner, run the 7-stage
//! GATK-like pipeline over the shards in parallel, and check the called
//! variants against the planted truth.
//!
//! Run with: `cargo run --release --example gatk_pipeline`

use scan::genomics::fastq::write_fastq;
use scan::genomics::pipeline::{GatkLikePipeline, STAGE_NAMES};
use scan::genomics::sam::SamRecord;
use scan::genomics::shard::shard_fastq;
use scan::genomics::{AlignStats, KmerIndex, ReadSimulator, ReferenceGenome};
use scan::sim::SimRng;

fn main() {
    let mut rng = SimRng::from_seed_u64(2015);

    // 1. A reference genome and a tumour-like sample with planted SNVs.
    println!("generating reference genome (2 chromosomes x 20 kb)…");
    let reference = ReferenceGenome::generate(&mut rng, 2, 20_000);
    let (sample, planted) = reference.plant_variants(&mut rng, 40);
    println!("planted {} ground-truth variants", planted.len());

    // 2. Sequencing: ~30x coverage of 100 bp reads with 0.2% errors.
    let sim = ReadSimulator { read_len: 100, error_rate: 0.002, reverse_prob: 0.5 };
    let n_reads = reference.total_len() * 30 / 100;
    let reads = sim.simulate(&mut rng, &sample, n_reads);
    let fastq = write_fastq(&reads);
    println!("sequenced {} reads ({} KB of FASTQ)", reads.len(), fastq.len() / 1024);

    // 3. The Data Broker's sharding: cut the FASTQ into ~256 KB pieces on
    //    record boundaries, one analysis subtask per piece.
    let shards = shard_fastq(&fastq, 256 * 1024).expect("well-formed FASTQ");
    println!("sharded into {} record-aligned pieces", shards.len());

    // 4. Alignment (the BWA stand-in), per shard.
    let index = KmerIndex::build(&reference, 17);
    let mut aligned_shards: Vec<Vec<SamRecord>> = Vec::new();
    let mut all_alignments = Vec::new();
    for shard in &shards {
        let shard_reads = scan::genomics::fastq::parse_fastq(shard).expect("valid shard");
        let alignments = index.align_batch(&reference, &shard_reads);
        all_alignments.extend(alignments.iter().cloned());
        aligned_shards.push(alignments);
    }
    let stats = AlignStats::score(&all_alignments);
    println!(
        "aligned: {}/{} correct ({:.1}%), {} unmapped",
        stats.correct,
        stats.total,
        100.0 * stats.accuracy(),
        stats.unmapped
    );

    // 5. The 7-stage GATK-like pipeline over the shards (rayon-parallel).
    let result = GatkLikePipeline::default().run(&reference, aligned_shards);
    println!("\n7-stage pipeline over {} shards:", result.shards);
    for (name, secs) in STAGE_NAMES.iter().zip(result.stage_seconds) {
        println!("  {name:<18} {secs:>9.4} s");
    }
    println!(
        "  reads analysed {} | duplicates flagged {} | filtered {}",
        result.reads_analysed, result.duplicates_flagged, result.reads_filtered
    );

    // 6. Score the calls against the planted truth.
    let called: std::collections::HashSet<(u32, u32, char)> =
        result.variants.iter().map(|v| (v.chrom, v.pos, v.alt_base)).collect();
    let found =
        planted.iter().filter(|v| called.contains(&(v.chrom, v.pos, v.alt_base as char))).count();
    println!(
        "\nvariants: called {} | recovered {}/{} planted ({:.0}% sensitivity)",
        result.variants.len(),
        found,
        planted.len(),
        100.0 * found as f64 / planted.len() as f64
    );
    let vcf = scan::genomics::variant::write_vcf(&result.variants);
    println!(
        "final VCF: {} lines, starts:\n{}",
        vcf.lines().count(),
        vcf.lines().take(4).collect::<Vec<_>>().join("\n")
    );
}
