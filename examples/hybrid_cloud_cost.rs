//! Drive the hybrid-cloud substrate directly: tiers, hiring, reshaping
//! and the two billing modes.
//!
//! Shows the §IV-A setup in isolation — the 624-core usage-billed private
//! tier, a pay-as-you-go public tier — plus the 30 s boot/reshape penalty
//! and how costs accrue through a small hand-driven scenario.
//!
//! Run with: `cargo run --release --example hybrid_cloud_cost`

use scan::cloud::instance::InstanceSize;
use scan::cloud::provider::CloudProvider;
use scan::cloud::tier::{TierCatalog, TierId};
use scan::sim::SimTime;

fn main() {
    let mut cloud = CloudProvider::new(TierCatalog::paper_hybrid(50.0));
    let t = SimTime::new;

    println!("hybrid cloud: private 624 cores @5 CU (usage-billed),");
    println!("              public unbounded @50 CU (billed while hired)\n");

    // Hire a 16-core worker; it boots for 0.5 TU (the 30 s penalty).
    let (w1, ready1) = cloud.hire(InstanceSize::new(16).unwrap(), t(0.0)).expect("capacity");
    println!("t=0.0  hired {:?} (16-core, private), ready at {}", w1, ready1);
    cloud.vm_mut(w1).unwrap().finish_boot(ready1);

    // Run a GATK stage task for 3 TU.
    cloud.vm_mut(w1).unwrap().start_task(t(1.0));
    cloud.vm_mut(w1).unwrap().finish_task(t(4.0));
    println!(
        "t=4.0  task done; private cost so far: {:.0} CU (16 cores x 5 CU x 3 TU)",
        cloud.total_cost(t(4.0))
    );

    // Reshape it to 4 cores for the next pipeline stage: boot again.
    let ready2 = cloud.reshape(w1, InstanceSize::new(4).unwrap(), t(4.0)).expect("capacity");
    println!("t=4.0  reshaped to 4-core; ready again at {ready2} (penalty paid)");
    cloud.vm_mut(w1).unwrap().finish_boot(ready2);

    // Saturate the private tier, forcing the next hire onto public cores.
    let mut hired = 1;
    while cloud.free_cores(TierId(0)) >= 16 {
        let (id, ready) = cloud
            .hire_on(TierId(0), InstanceSize::new(16).unwrap(), t(5.0))
            .expect("private capacity");
        cloud.vm_mut(id).unwrap().finish_boot(ready);
        hired += 1;
    }
    println!(
        "\nt=5.0  private tier saturated with {hired} workers ({} cores in use)",
        cloud.cores_in_use(TierId(0))
    );

    let (pub_vm, _) =
        cloud.hire(InstanceSize::new(8).unwrap(), t(5.0)).expect("public is unbounded");
    println!(
        "t=5.0  next hire lands on the public tier: {:?} on {:?}",
        pub_vm,
        cloud.vm(pub_vm).unwrap().tier
    );

    // Watch the bills diverge: idle private cores are free (depreciation
    // model), the idle public worker bills every TU.
    let c5 = cloud.total_cost(t(5.5));
    let c7 = cloud.total_cost(t(7.5));
    println!("\ncost at t=5.5: {c5:.0} CU; at t=7.5: {c7:.0} CU");
    println!(
        "  -> +{:.0} CU in 2 TU, all from the idle 8-core public worker (8 x 50 x 2)",
        c7 - c5
    );

    cloud.release(pub_vm, t(7.5));
    println!(
        "t=7.5  released the public worker; burn rate now {:.0} CU/TU (idle private is free)",
        {
            // Burn rate counts hired capacity; with busy-billing the *accrual*
            // is zero while idle, which total_cost reflects:
            let c8 = cloud.total_cost(t(8.5));
            c8 - cloud.total_cost(t(7.5))
        }
    );

    println!(
        "\ntotals: {:.0} CU spent, {:.0} core-TU hired, {} workers ever hired",
        cloud.total_cost(t(8.5)),
        cloud.total_core_tu(t(8.5)),
        cloud.hired_total()
    );
}
