#!/usr/bin/env python3
"""Trace-driven figures: turn the simulator's trace surfaces into SVG.

Stdlib-only (json + struct + string formatting — no matplotlib), so it
runs in the offline container. Five inputs, four figures (emit any
subset):

  --store store.scts         columnar SCTS store (fig4/fig5/sweep/fleet
                             binaries, `--store <path>`; see
                             docs/TRACESTORE.md): same session figure as
                             --trace, decoded from the compact binary
                             export instead of JSONL.
  --trace trace.jsonl        per-event session stream (fig4/fig5/sweep
                             binaries, `--trace <path>`): queue depth over
                             time (step line) + cumulative VM hires per
                             tier on a second panel, sharing the time axis.
  --cell-trace cells.jsonl   per-cell sweep summaries (`sweep --cell-trace
                             <path>`): the scaling-decision mix of every
                             grid cell as a normalised stacked bar.
  --metrics out.jsonl        metrics-registry dump (binaries' `--metrics
                             <path>`): the windowed time series — fleet
                             utilisation, per-tier spend rate, mean queue
                             depth — as three panels over sim time.
  --spans spans.json.txt     critical-path report (binaries' `--spans
                             <path>` writes it at `<path>.txt`; see
                             docs/SPANS.md): the slowest jobs' latency
                             decomposition as stacked segment bars.

  python3 scripts/plot_traces.py --store /tmp/fig4.scts \
      --cell-trace /tmp/cells.jsonl --metrics /tmp/out.jsonl --out-dir plots/

writes plots/session.svg, plots/decisions.svg, plots/metrics.svg and
plots/spans.svg. Field
meanings are documented in docs/TRACE_SCHEMA.md, docs/TRACESTORE.md,
docs/METRICS.md and docs/SPANS.md; regenerate the inputs with

  cargo run --release -p scan-bench --bin sweep -- \
      --trace /tmp/trace.jsonl --cell-trace /tmp/cells.jsonl
  cargo run --release -p scan-bench --bin fig4 -- --quick \
      --store /tmp/fig4.scts --metrics /tmp/out.jsonl --spans /tmp/spans.json
"""

import argparse
import json
import os
import struct
import sys

# ----------------------------------------------------------------------
# Tiny SVG canvas
# ----------------------------------------------------------------------

FONT = "font-family='Helvetica,Arial,sans-serif'"


class Svg:
    def __init__(self, width, height):
        self.w, self.h = width, height
        self.parts = [
            f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
            f"height='{height}' viewBox='0 0 {width} {height}'>",
            f"<rect width='{width}' height='{height}' fill='white'/>",
        ]

    def line(self, x1, y1, x2, y2, color="#888", width=1, dash=None):
        d = f" stroke-dasharray='{dash}'" if dash else ""
        self.parts.append(
            f"<line x1='{x1:.1f}' y1='{y1:.1f}' x2='{x2:.1f}' y2='{y2:.1f}' "
            f"stroke='{color}' stroke-width='{width}'{d}/>"
        )

    def polyline(self, pts, color, width=1.2):
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
        self.parts.append(
            f"<polyline points='{path}' fill='none' stroke='{color}' "
            f"stroke-width='{width}'/>"
        )

    def rect(self, x, y, w, h, color, title=None):
        t = f"<title>{title}</title>" if title else ""
        self.parts.append(
            f"<rect x='{x:.1f}' y='{y:.1f}' width='{w:.2f}' height='{h:.1f}' "
            f"fill='{color}'>{t}</rect>"
        )

    def text(self, x, y, s, size=11, color="#222", anchor="start", rotate=None):
        r = f" transform='rotate({rotate} {x:.1f} {y:.1f})'" if rotate else ""
        self.parts.append(
            f"<text x='{x:.1f}' y='{y:.1f}' {FONT} font-size='{size}' "
            f"fill='{color}' text-anchor='{anchor}'{r}>{s}</text>"
        )

    def write(self, path):
        self.parts.append("</svg>")
        with open(path, "w") as f:
            f.write("\n".join(self.parts) + "\n")


def ticks(lo, hi, n=5):
    """~n round tick positions covering [lo, hi]."""
    span = max(hi - lo, 1e-9)
    raw = span / n
    mag = 10 ** int(f"{raw:e}".split("e")[1])
    step = next(s * mag for s in (1, 2, 5, 10) if s * mag >= raw)
    t, out = (int(lo / step)) * step, []
    while t <= hi + 1e-9:
        if t >= lo - 1e-9:
            out.append(t)
        t += step
    return out


def fmt(v):
    return f"{v:g}" if abs(v) < 1e5 else f"{v:.0e}"


# ----------------------------------------------------------------------
# SCTS store reader (docs/TRACESTORE.md "Export format (SCTS v2)")
# ----------------------------------------------------------------------

SCTS_MAGIC = b"SCTS"
SCTS_VERSION = 2
# Declared columns per table, in table order. Mirrors EventKind::columns
# in crates/tracestore/src/schema.rs (which scan-lint's store-doc-drift
# rule pins against docs/TRACESTORE.md). u = varint int, f = raw f64 LE,
# d = dictionary-encoded label.
SCTS_SCHEMA = [
    ("job_arrived", [("job", "u"), ("size_units", "f"), ("submitted_tu", "f")]),
    ("job_stage_advanced",
     [("job", "u"), ("stage", "u"), ("shards", "u"), ("cores", "u")]),
    ("job_completed",
     [("job", "u"), ("latency_tu", "f"), ("reward", "f"), ("core_stages", "f")]),
    ("slo_violation", [("job", "u"), ("latency_tu", "f"), ("target_tu", "f")]),
    ("subtask_dispatched",
     [("job", "u"), ("stage", "u"), ("vm", "u"), ("cores", "u"),
      ("waited_tu", "f"), ("busy_tu", "f"), ("tier", "d")]),
    ("subtask_done", [("job", "u"), ("stage", "u"), ("vm", "u")]),
    ("vm_hired", [("vm", "u"), ("tier", "d"), ("cores", "u")]),
    ("vm_booted", [("vm", "u"), ("cores", "u")]),
    ("vm_reshaped",
     [("vm", "u"), ("tier", "d"), ("cores_from", "u"), ("cores_to", "u")]),
    ("vm_released", [("vm", "u"), ("tier", "d"), ("cores", "u")]),
    ("scaling_decision",
     [("stage", "u"), ("cores", "u"), ("queued_jobs", "u"),
      ("delay_cost", "f"), ("hire_cost", "f"), ("choice", "d")]),
    ("queue_depth", [("depth", "u")]),
    ("admission_deferred", [("jobs", "u"), ("backlog", "u")]),
    ("admission_resumed", [("jobs", "u"), ("backlog", "u")]),
    ("tier_settled", [("tier", "d"), ("cost", "f"), ("core_tu", "f")]),
    ("run_ended", [("events_dispatched", "u")]),
]


def _fnv1a64(data):
    h = 0xCBF29CE484222325
    for b in data:
        h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def read_scts(path):
    """Decode an SCTS v2 store into {tag: {column: list}}, with the
    implicit `t` (f64 TU) and `tenant` columns materialised and dict
    columns decoded straight to their labels. Verifies the digest."""
    data = open(path, "rb").read()
    if len(data) < 16 or data[:4] != SCTS_MAGIC:
        raise ValueError(f"{path}: not an SCTS export")
    payload, trailer = data[:-8], data[-8:]
    if _fnv1a64(payload) != struct.unpack("<Q", trailer)[0]:
        raise ValueError(f"{path}: SCTS digest mismatch")
    version = struct.unpack("<I", payload[4:8])[0]
    if version != SCTS_VERSION:
        raise ValueError(f"{path}: unsupported SCTS version {version}")

    pos = 8

    def varint():
        nonlocal pos
        v = shift = 0
        while True:
            b = payload[pos]
            pos += 1
            v |= (b & 0x7F) << shift
            if not b & 0x80:
                return v
            shift += 7

    tables = {}
    for tag, spec in SCTS_SCHEMA:
        rows = varint()
        table = {name: [] for name in ["t", "tenant"] + [n for n, _ in spec]}
        tables[tag] = table
        if rows == 0:
            continue
        bits = 0
        for _ in range(rows):
            bits = (bits + varint()) & 0xFFFFFFFFFFFFFFFF
            table["t"].append(struct.unpack("<d", struct.pack("<Q", bits))[0])
        table["tenant"] = [varint() for _ in range(rows)]
        for name, ty in spec:
            if ty == "u":
                table[name] = [varint() for _ in range(rows)]
            elif ty == "f":
                table[name] = list(struct.unpack(f"<{rows}d", payload[pos:pos + 8 * rows]))
                pos += 8 * rows
            else:  # dict: label table, then one code per row
                labels = []
                for _ in range(varint()):
                    n = varint()
                    labels.append(payload[pos:pos + n].decode("utf-8"))
                    pos += n
                table[name] = [labels[varint()] for _ in range(rows)]
    if pos != len(payload):
        raise ValueError(f"{path}: trailing bytes in SCTS payload")
    return tables


# ----------------------------------------------------------------------
# Figure 1: session timeline (queue depth + cumulative hires per tier)
# ----------------------------------------------------------------------

TIER_NAMES = {0: "private", 1: "public"}
TIER_COLORS = {"private": "#1f77b4", "public": "#d62728"}


def session_series_from_jsonl(path):
    """depth [(t, depth)] and label-keyed cumulative hires from JSONL."""
    depth, hires = [], {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            e = json.loads(line)
            kind = e.get("kind")
            if kind == "queue_depth":
                depth.append((e["t"], e["depth"]))
            elif kind == "vm_hired":
                label = TIER_NAMES.get(e["tier"], f"tier {e['tier']}")
                series = hires.setdefault(label, [])
                series.append((e["t"], (series[-1][1] if series else 0) + 1))
    return depth, hires


def session_series_from_store(path):
    """Same series as `session_series_from_jsonl`, from an SCTS store
    (the store's `vm_hired.tier` column already carries labels)."""
    tables = read_scts(path)
    qd = tables["queue_depth"]
    depth = list(zip(qd["t"], qd["depth"]))
    hires = {}
    for t, label in zip(tables["vm_hired"]["t"], tables["vm_hired"]["tier"]):
        series = hires.setdefault(label, [])
        series.append((t, (series[-1][1] if series else 0) + 1))
    return depth, hires


def plot_session(depth, hires, source, out_path):
    if not depth and not hires:
        print(f"no queue_depth/vm_hired events in {source}", file=sys.stderr)
        return False

    W, H, ML, MR, MT, GAP = 860, 460, 62, 18, 30, 46
    panel_h = (H - MT - GAP - 40) / 2
    t_max = max(
        [t for t, _ in depth] + [t for s in hires.values() for t, _ in s]
    )
    t_max = t_max or 1.0
    sx = lambda t: ML + (W - ML - MR) * t / t_max

    svg = Svg(W, H)
    svg.text(ML, 18, f"Session timeline — {os.path.basename(source)}", size=13)

    # Panel 1: queue depth (step line over event-driven samples).
    top1 = MT + 8
    d_max = max((d for _, d in depth), default=1) or 1
    sy1 = lambda d: top1 + panel_h * (1 - d / d_max)
    for tv in ticks(0, d_max):
        svg.line(ML, sy1(tv), W - MR, sy1(tv), "#eee")
        svg.text(ML - 6, sy1(tv) + 4, fmt(tv), size=10, anchor="end")
    # Event-driven samples can number in the hundreds of thousands; collapse
    # them to a per-pixel-column min/max envelope so the SVG stays small and
    # nothing a 1-px stroke could show is lost.
    cols = {}
    for t, d in depth:
        px = round(sx(t))
        lo, hi = cols.get(px, (d, d))
        cols[px] = (min(lo, d), max(hi, d))
    pts = []
    for px in sorted(cols):
        lo, hi = cols[px]
        pts.append((px, sy1(lo)))
        if hi != lo:
            pts.append((px, sy1(hi)))
    if pts:
        svg.polyline(pts, "#2ca02c")
    svg.text(ML, top1 - 4, "queued subtasks (all classes)", size=11, color="#2ca02c")

    # Panel 2: cumulative hires per tier.
    top2 = top1 + panel_h + GAP
    h_max = max((s[-1][1] for s in hires.values()), default=1) or 1
    sy2 = lambda n: top2 + panel_h * (1 - n / h_max)
    for tv in ticks(0, h_max):
        svg.line(ML, sy2(tv), W - MR, sy2(tv), "#eee")
        svg.text(ML - 6, sy2(tv) + 4, fmt(tv), size=10, anchor="end")
    for i, label in enumerate(sorted(hires)):
        series = hires[label]
        cols = {}  # cumulative count is monotone: last value per pixel wins
        for t, n in series:
            cols[round(sx(t))] = n
        pts, last = [(sx(0), sy2(0))], 0
        for px in sorted(cols):
            pts.append((px, sy2(last)))
            pts.append((px, sy2(cols[px])))
            last = cols[px]
        pts.append((sx(t_max), sy2(series[-1][1])))
        color = TIER_COLORS.get(label, "#555")
        svg.polyline(pts, color)
        svg.text(
            ML + 150 * i, top2 - 4,
            f"{label}: {series[-1][1]} hires", size=11, color=color,
        )
    if not hires:
        svg.text(ML, top2 - 4, "no vm_hired events", size=11, color="#999")

    # Shared time axis.
    axis_y = top2 + panel_h
    svg.line(ML, axis_y, W - MR, axis_y, "#444")
    for tv in ticks(0, t_max, 8):
        svg.line(sx(tv), axis_y, sx(tv), axis_y + 4, "#444")
        svg.text(sx(tv), axis_y + 16, fmt(tv), size=10, anchor="middle")
    svg.text((ML + W - MR) / 2, axis_y + 32, "simulation time (TU)", anchor="middle")

    svg.write(out_path)
    print(f"wrote {out_path} ({len(depth)} depth samples, "
          f"{sum(s[-1][1] for s in hires.values())} hires)")
    return True


# ----------------------------------------------------------------------
# Figure 2: decision mix across the sweep grid (stacked bars)
# ----------------------------------------------------------------------

CHOICES = ["hire_private", "hire_public", "reshape", "throttled_private", "wait"]
CHOICE_COLORS = {
    "hire_private": "#1f77b4",
    "hire_public": "#d62728",
    "reshape": "#9467bd",
    "throttled_private": "#ff7f0e",
    "wait": "#bbbbbb",
}


def plot_decisions(cells_path, out_path):
    cells = []
    with open(cells_path) as f:
        for line in f:
            line = line.strip()
            if line:
                cells.append(json.loads(line))
    if not cells:
        print(f"no cell lines in {cells_path}", file=sys.stderr)
        return False

    ROW, ML, MR, MT, MB = 16, 320, 90, 56, 24
    W = 900
    H = MT + ROW * len(cells) + MB
    bar_w = W - ML - MR
    svg = Svg(W, H)
    svg.text(ML, 18, f"Scaling-decision mix per grid cell — "
             f"{os.path.basename(cells_path)}", size=13)
    for i, c in enumerate(CHOICES):  # legend
        x = ML + i * 150
        svg.rect(x, 26, 10, 10, CHOICE_COLORS[c])
        svg.text(x + 14, 35, c, size=10)

    for i, cell in enumerate(cells):
        y = MT + i * ROW
        counts = cell.get("stats", {}).get("decisions", {})
        total = sum(counts.get(c, 0) for c in CHOICES)
        label = (f'{cell.get("allocation", "?")} / {cell.get("scaling", "?")} '
                 f'/ int {cell.get("interval", "?")} / {cell.get("reward", "?")} '
                 f'/ p{cell.get("public_cost", "?")}')
        svg.text(ML - 6, y + ROW - 5, label, size=9, anchor="end")
        if total == 0:
            svg.text(ML + 4, y + ROW - 5, "no decisions", size=9, color="#999")
            continue
        x = ML
        for c in CHOICES:
            n = counts.get(c, 0)
            if n == 0:
                continue
            w = bar_w * n / total
            svg.rect(x, y + 2, w, ROW - 4, CHOICE_COLORS[c],
                     title=f"{label}: {c} = {n} ({100 * n / total:.1f}%)")
            x += w
        svg.text(W - MR + 6, y + ROW - 5, f"{total}", size=9, color="#555")

    svg.text(W - MR + 6, MT - 6, "total", size=9, color="#555")
    svg.write(out_path)
    print(f"wrote {out_path} ({len(cells)} cells)")
    return True


# ----------------------------------------------------------------------
# Figure 3: windowed metric series (utilisation, spend rate, queue depth)
# ----------------------------------------------------------------------

SPEND_COLORS = {"private": "#1f77b4", "public": "#d62728"}


def plot_metrics(metrics_path, out_path):
    """Render the registry dump's windowed series: one value per fixed
    sim-time window, x placed at the window's end."""
    series = {}  # metric name -> [(label, window_tu, points)]
    with open(metrics_path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            e = json.loads(line)
            if e.get("type") != "series":
                continue
            label = next(iter(e.get("labels", {}).values()), "")
            series.setdefault(e["metric"], []).append(
                (label, e["window_tu"], e["points"])
            )
    panels = [
        ("vm_utilisation", "fleet utilisation (busy/hired cores)", "#2ca02c"),
        ("tier_spend_rate", "spend rate (CU/TU)", None),
        ("queue_depth", "mean queued subtasks", "#9467bd"),
    ]
    present = [p for p in panels if p[0] in series]
    if not present:
        print(f"no series lines in {metrics_path}", file=sys.stderr)
        return False

    W, ML, MR, MT, GAP, PANEL = 860, 62, 18, 30, 40, 118
    H = MT + len(present) * (PANEL + GAP) + 30
    t_max = max(
        w * len(pts)
        for entries in series.values()
        for _, w, pts in entries
        if pts
    )
    t_max = t_max or 1.0
    sx = lambda t: ML + (W - ML - MR) * t / t_max

    svg = Svg(W, H)
    svg.text(ML, 18, f"Windowed metrics — {os.path.basename(metrics_path)}", size=13)

    for i, (name, title, color) in enumerate(present):
        top = MT + 12 + i * (PANEL + GAP)
        entries = series[name]
        v_max = max((v for _, _, pts in entries for v in pts), default=1) or 1
        sy = lambda v: top + PANEL * (1 - v / v_max)
        for tv in ticks(0, v_max, 4):
            svg.line(ML, sy(tv), W - MR, sy(tv), "#eee")
            svg.text(ML - 6, sy(tv) + 4, fmt(tv), size=10, anchor="end")
        for j, (label, w, pts) in enumerate(sorted(entries)):
            c = color or SPEND_COLORS.get(label, "#555")
            svg.polyline([(sx((k + 1) * w), sy(v)) for k, v in enumerate(pts)], c)
            tag = f"{title} [{label}]" if label else title
            svg.text(ML + 220 * j, top - 4, tag, size=11, color=c)
        axis_y = top + PANEL
        svg.line(ML, axis_y, W - MR, axis_y, "#444")
        for tv in ticks(0, t_max, 8):
            svg.line(sx(tv), axis_y, sx(tv), axis_y + 3, "#444")
            if i == len(present) - 1:
                svg.text(sx(tv), axis_y + 14, fmt(tv), size=10, anchor="middle")
    svg.text((ML + W - MR) / 2, H - 6, "simulation time (TU)", anchor="middle")

    svg.write(out_path)
    n_pts = sum(len(pts) for e in series.values() for _, _, pts in e)
    print(f"wrote {out_path} ({len(present)} panels, {n_pts} window points)")
    return True



# ----------------------------------------------------------------------
# Figure 4: critical-path spans (slowest jobs' stacked segment bars)
# ----------------------------------------------------------------------

SEGMENT_COLORS = {
    "admission_deferred": "#9467bd",
    "queue_wait": "#ff7f0e",
    "boot_wait": "#d62728",
    "reshape_penalty": "#8c564b",
    "service": "#1f77b4",
    "fan_in": "#2ca02c",
}


def read_spans_report(path):
    """Parses the `spans: slowest jobs` table of a `--spans <path>.txt`
    report (docs/SPANS.md): segment names come from the header row, so
    the figure tracks the taxonomy without a schema copy here."""
    jobs, segments = [], None
    with open(path) as f:
        lines = [l.rstrip("\n") for l in f if l.startswith("spans: ")]
    for i, line in enumerate(lines):
        cols = line[len("spans: "):].split()
        if cols[:4] == ["tenant", "job", "latency_tu", "stages"]:
            segments = cols[4:]
            for row in lines[i + 1:]:
                vals = row[len("spans: "):].split()
                if len(vals) != 4 + len(segments) or not vals[0].isdigit():
                    break
                jobs.append({
                    "tenant": int(vals[0]),
                    "job": int(vals[1]),
                    "latency_tu": float(vals[2]),
                    "stages": int(vals[3]),
                    "segments": [float(v) for v in vals[4:]],
                })
            break
    return segments, jobs


def plot_spans(report_path, out_path):
    segments, jobs = read_spans_report(report_path)
    if not jobs:
        print(f"no `spans: slowest jobs` table in {report_path}", file=sys.stderr)
        return False

    W, ML, MR, MT, ROW, GAP = 860, 150, 18, 56, 26, 8
    H = MT + len(jobs) * (ROW + GAP) + 58
    t_max = max(j["latency_tu"] for j in jobs) or 1.0
    sx = lambda v: (W - ML - MR) * v / t_max

    svg = Svg(W, H)
    svg.text(ML, 18, f"Critical paths — slowest {len(jobs)} jobs "
             f"({os.path.basename(report_path)})", size=13)
    # Legend: one swatch per segment kind that actually occurs.
    lx = ML
    occurring = [(k, i) for i, k in enumerate(segments)
                 if any(j["segments"][i] > 0 for j in jobs)]
    for name, _ in occurring:
        svg.rect(lx, 28, 10, 10, SEGMENT_COLORS.get(name, "#999"))
        svg.text(lx + 14, 37, name, size=10)
        lx += 14 + 7 * len(name) + 16

    for r, job in enumerate(jobs):
        y = MT + r * (ROW + GAP)
        svg.text(ML - 8, y + ROW - 8,
                 f"t{job['tenant']} job {job['job']}", size=11, anchor="end")
        x = ML
        for name, i in occurring:
            w = sx(job["segments"][i])
            if w <= 0:
                continue
            svg.rect(x, y, w, ROW, SEGMENT_COLORS.get(name, "#999"),
                     title=f"{name}: {job['segments'][i]:.3f} TU")
            x += w
        svg.text(x + 5, y + ROW - 8, f"{job['latency_tu']:.2f} TU", size=10,
                 color="#555")

    ax_y = MT + len(jobs) * (ROW + GAP) + 6
    svg.line(ML, ax_y, W - MR, ax_y, "#444")
    for t in ticks(0, t_max):
        svg.line(ML + sx(t), ax_y, ML + sx(t), ax_y + 4, "#444")
        svg.text(ML + sx(t), ax_y + 16, fmt(t), size=10, anchor="middle")
    svg.text((ML + W - MR) / 2, ax_y + 34, "latency decomposition (TU)",
             size=11, anchor="middle")
    svg.write(out_path)
    print(f"wrote {out_path} ({len(jobs)} jobs, {len(occurring)} segment kinds)")
    return True


# ----------------------------------------------------------------------


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("--store", help="columnar SCTS store (binaries' --store)")
    ap.add_argument("--trace", help="per-event session JSONL (binaries' --trace)")
    ap.add_argument("--cell-trace", help="per-cell sweep JSONL (sweep --cell-trace)")
    ap.add_argument("--metrics", help="metrics-registry JSONL (binaries' --metrics)")
    ap.add_argument("--spans", help="critical-path report (binaries' --spans writes <path>.txt)")
    ap.add_argument("--out-dir", default=".", help="directory for the SVGs")
    args = ap.parse_args()
    if not any((args.store, args.trace, args.cell_trace, args.metrics, args.spans)):
        ap.error("give --store, --trace, --cell-trace, --metrics and/or --spans")
    if args.store and args.trace:
        ap.error("--store and --trace both feed the session figure; give one")
    os.makedirs(args.out_dir, exist_ok=True)
    ok = True
    if args.store or args.trace:
        if args.store:
            depth, hires = session_series_from_store(args.store)
        else:
            depth, hires = session_series_from_jsonl(args.trace)
        ok &= plot_session(depth, hires, args.store or args.trace,
                           os.path.join(args.out_dir, "session.svg"))
    if args.cell_trace:
        ok &= plot_decisions(
            args.cell_trace, os.path.join(args.out_dir, "decisions.svg")
        )
    if args.metrics:
        ok &= plot_metrics(args.metrics, os.path.join(args.out_dir, "metrics.svg"))
    if args.spans:
        ok &= plot_spans(args.spans, os.path.join(args.out_dir, "spans.svg"))
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
