#!/usr/bin/env bash
# Perf-trajectory recorder: runs the criterion benches and folds their
# medians into a JSON ledger, so every PR's before/after numbers are
# committed next to the code that produced them.
#
#   ./scripts/bench.sh                         run all benches, print JSON
#   ./scripts/bench.sh --quick                 end-to-end session bench only
#   ./scripts/bench.sh --benches hiring,session,fleet
#                                              run a named subset (skips
#                                              the export-footprint step)
#   ./scripts/bench.sh --label after --out BENCH_PR3.json
#                                              merge this run into the
#                                              ledger under "runs.after"
#   ./scripts/bench.sh --compare old.json new.json [--tolerance 0.30]
#                                              gate: fail if any benchmark
#                                              in new is slower than old
#                                              by more than the tolerance
#                                              (runs nothing; pure ledger
#                                              comparison)
#
# The ledger file accumulates runs: {"runs": {"<label>": {...}}}. Each run
# records, per benchmark, the mean seconds/iteration plus the derived
# sessions/sec and ns/event for the end-to-end session benches.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
label="run"
out=""
subset=""
compare_old=""
compare_new=""
tolerance="0.30"
while [[ $# -gt 0 ]]; do
    case "$1" in
        --quick) quick=1 ;;
        --benches) subset="$2"; shift ;;
        --label) label="$2"; shift ;;
        --out) out="$2"; shift ;;
        --compare) compare_old="$2"; compare_new="$3"; shift 2 ;;
        --tolerance) tolerance="$2"; shift ;;
        *) echo "unknown flag: $1" >&2; exit 2 ;;
    esac
    shift
done

if [[ -n "$compare_old" ]]; then
    python3 - "$compare_old" "$compare_new" "$tolerance" <<'PY'
import json, sys

old_path, new_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])

def flatten(path):
    """A ledger ({"runs": {label: run}}) or a bare run ({"results": …}):
    merge every run's results in insertion order, later labels winning."""
    doc = json.load(open(path))
    merged = {}
    for run in doc.get("runs", {"": doc}).values():
        merged.update(run.get("results", {}))
    return merged

old, new = flatten(old_path), flatten(new_path)
common = sorted(set(old) & set(new))
if not common:
    sys.exit(f"no common benchmarks between {old_path} and {new_path}")

regressions, rows = [], []
for name in common:
    o, n = old[name]["mean_s"], new[name]["mean_s"]
    ratio = n / o if o else float("inf")
    mark = " "
    if ratio > 1.0 + tol:
        mark = "R"
        regressions.append(name)
    elif ratio < 1.0 - tol:
        mark = "+"
    rows.append(f"  {mark} {name:<40} {o:>12.3e}s -> {n:>12.3e}s  ({ratio - 1.0:+8.1%})")

print(f"bench compare: {old_path} -> {new_path} (tolerance ±{tol:.0%})")
print("\n".join(rows))
only = sorted(set(old) ^ set(new))
if only:
    print(f"  (not in both, skipped: {', '.join(only)})")
if regressions:
    print(f"FAIL: {len(regressions)} benchmark(s) regressed beyond {tol:.0%}: "
          + ", ".join(regressions))
    sys.exit(1)
print(f"OK: no regression beyond {tol:.0%} across {len(common)} benchmarks")
PY
    exit 0
fi

if [[ -n "$subset" ]]; then
    IFS=',' read -r -a benches <<< "$subset"
    quick=1 # subset runs skip the export-footprint measurement too
else
    benches=(session)
    if [[ "$quick" == 0 ]]; then
        benches+=(dispatch hiring metrics lint fleet tracestore spans)
    fi
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
for b in "${benches[@]}"; do
    echo "==> cargo bench -p scan-bench --bench $b" >&2
    cargo bench -p scan-bench --bench "$b" 2>/dev/null | tee -a "$raw" >&2
done

# Export footprint on real artefacts: the medium fig4 cell written as
# JSONL and as an SCTS store (docs/TRACESTORE.md "Export format"). The
# ≥5x size criterion of PR7 is measured and ledgered here.
jsonl_bytes=0; scts_bytes=0
if [[ "$quick" == 0 ]]; then
    echo "==> export footprint (medium fig4 cell: JSONL vs SCTS)" >&2
    tj="$(mktemp)"; ts="$(mktemp)"
    SCAN_HORIZON=300 SCAN_REPS=1 cargo run -q --release -p scan-bench --bin fig4 -- \
        --quick --trace "$tj" --store "$ts" >/dev/null
    jsonl_bytes="$(wc -c < "$tj")"
    scts_bytes="$(wc -c < "$ts")"
    rm -f "$tj" "$ts"
    echo "    jsonl ${jsonl_bytes} B, scts ${scts_bytes} B" >&2
fi

python3 - "$raw" "$label" "$out" "$jsonl_bytes" "$scts_bytes" <<'PY'
import json, re, subprocess, sys

raw_path, label, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
jsonl_bytes, scts_bytes = int(sys.argv[4]), int(sys.argv[5])

UNIT = {"ns": 1e-9, "µs": 1e-6, "us": 1e-6, "ms": 1e-3, "s": 1.0}
LINE = re.compile(
    r"^(?P<name>\S+)\s+time:\s+\[(?P<min>[\d.]+) (?P<minu>\S+) "
    r"(?P<mean>[\d.]+) (?P<meanu>\S+) (?P<max>[\d.]+) (?P<maxu>\S+)\]"
    r"(?:\s+thrpt: (?P<rate>[\d.]+) ?(?P<ratesuf>G|M|K)? ?elem/s)?"
)
SUF = {"G": 1e9, "M": 1e6, "K": 1e3, None: 1.0}

results = {}
for line in open(raw_path):
    m = LINE.match(line.strip())
    if not m:
        continue
    mean_s = float(m["mean"]) * UNIT[m["meanu"]]
    entry = {
        "min_s": float(m["min"]) * UNIT[m["minu"]],
        "mean_s": mean_s,
        "max_s": float(m["max"]) * UNIT[m["maxu"]],
    }
    if m["rate"]:
        # session benches report Throughput::Elements(events): the rate is
        # events/sec, and events = rate × mean seconds.
        events_per_s = float(m["rate"]) * SUF[m["ratesuf"]]
        entry["events_per_s"] = events_per_s
        if m["name"].startswith("session/full/"):
            entry["sessions_per_s"] = 1.0 / mean_s
            entry["ns_per_event"] = 1e9 / events_per_s
        if m["name"].startswith("fleet/tenants/"):
            # Fleet benches report Throughput::Elements(jobs): elem/s is
            # whole-fleet jobs/sec at that tenant count.
            entry["jobs_per_s"] = events_per_s
    results[m["name"]] = entry

commit = subprocess.run(
    ["git", "rev-parse", "--short", "HEAD"], capture_output=True, text=True
).stdout.strip() or "unknown"

run = {"commit": commit, "results": results}
if scts_bytes:
    run["export_size"] = {
        "fig4_jsonl_bytes": jsonl_bytes,
        "fig4_scts_bytes": scts_bytes,
        "jsonl_over_scts": round(jsonl_bytes / scts_bytes, 2),
    }

if out_path:
    try:
        ledger = json.load(open(out_path))
    except (FileNotFoundError, json.JSONDecodeError):
        ledger = {
            "_comment": "End-to-end and per-subsystem bench medians per "
            "labelled run; written by scripts/bench.sh.",
            "runs": {},
        }
    ledger.setdefault("runs", {})[label] = run
    with open(out_path, "w") as f:
        json.dump(ledger, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path} (label: {label}, {len(results)} benchmarks)")
else:
    print(json.dumps(run, indent=2, sort_keys=True))
PY
