#!/usr/bin/env bash
# Local CI gate: everything a PR must pass before merging.
#
#   ./scripts/ci.sh          full gate (build, tests, clippy, fmt)
#   ./scripts/ci.sh quick    skip the release build
#
# The container is offline; all third-party crates resolve to the in-repo
# shims under compat/, so `cargo` never touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

quick="${1:-}"

echo "==> scan-lint --deny-warnings (determinism + hygiene + doc drift)"
cargo run -q -p scan-lint -- --deny-warnings

if [[ "$quick" != "quick" ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1, root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo bench --no-run (bench smoke: harnesses must compile)"
cargo bench --workspace --no-run --quiet

echo "==> metrics determinism (parallel merge == sequential fold)"
cargo test -q -p scan-platform instrument::tests::merged_export_is_identical_to_sequential_fold

if [[ "$quick" != "quick" ]]; then
    echo "==> trace determinism (two fixed-seed runs, byte-identical traces)"
    t1="$(mktemp)"; t2="$(mktemp)"
    trap 'rm -f "$t1" "$t2"' EXIT
    SCAN_HORIZON=300 SCAN_REPS=1 cargo run -q --release -p scan-bench --bin fig4 -- \
        --quick --trace "$t1" >/dev/null
    SCAN_HORIZON=300 SCAN_REPS=1 cargo run -q --release -p scan-bench --bin fig4 -- \
        --quick --trace "$t2" >/dev/null
    cmp "$t1" "$t2" || { echo "FAIL: fixed-seed trace differs between runs" >&2; exit 1; }

    echo "==> fleet determinism (1 vs 8 rayon threads, byte-identical stdout)"
    f1="$(mktemp)"; f2="$(mktemp)"
    trap 'rm -f "$t1" "$t2" "$f1" "$f2"' EXIT
    RAYON_NUM_THREADS=1 cargo run -q --release -p scan-bench --bin fleet -- --quick > "$f1"
    RAYON_NUM_THREADS=8 cargo run -q --release -p scan-bench --bin fleet -- --quick > "$f2"
    cmp "$f1" "$f2" || { echo "FAIL: fleet result depends on rayon thread count" >&2; exit 1; }
fi

echo "==> metrics overhead bench (run-gate: disabled hot path must execute)"
cargo bench -p scan-bench --bench metrics >/dev/null

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "CI gate passed."
