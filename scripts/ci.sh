#!/usr/bin/env bash
# Local CI gate: everything a PR must pass before merging.
#
#   ./scripts/ci.sh          full gate (build, tests, clippy, fmt)
#   ./scripts/ci.sh quick    skip the release build
#
# The container is offline; all third-party crates resolve to the in-repo
# shims under compat/, so `cargo` never touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

quick="${1:-}"

echo "==> scan-lint --deny-warnings (determinism + hygiene + doc drift + semantic passes)"
cargo run -q -p scan-lint -- --deny-warnings

echo "==> scan-lint --json (machine-output schema check)"
# The heredoc is python's stdin (it is the script), so the JSON goes
# through a file, not a pipe.
lint_json="$(mktemp)"
cargo run -q -p scan-lint -- --json > "$lint_json"
python3 - "$lint_json" <<'PY'
import json, sys

with open(sys.argv[1]) as fh:
    doc = json.load(fh)
for key in ("files_scanned", "errors", "warnings", "findings"):
    assert key in doc, f"scan-lint --json lost the `{key}` key"
assert isinstance(doc["findings"], list), "findings must be a list"
for f in doc["findings"]:
    for key in ("path", "line", "col", "severity", "rule", "message", "chain"):
        assert key in f, f"finding lost the `{key}` key: {f}"
    for hop in f["chain"]:
        for key in ("label", "path", "line"):
            assert key in hop, f"chain hop lost the `{key}` key: {hop}"
print(f"scan-lint --json schema OK ({doc['files_scanned']} files, "
      f"{len(doc['findings'])} findings)")
PY
rm -f "$lint_json"

if [[ "$quick" != "quick" ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1, root package)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo bench --no-run (bench smoke: harnesses must compile)"
cargo bench --workspace --no-run --quiet

echo "==> metrics determinism (parallel merge == sequential fold)"
cargo test -q -p scan-platform instrument::tests::merged_export_is_identical_to_sequential_fold

echo "==> span conservation (medium fig4 cell: segments sum bit-exactly to latency)"
cargo test -q -p scan-spans --test conservation

if [[ "$quick" != "quick" ]]; then
    echo "==> store determinism (two fixed-seed runs, identical SCTS digest)"
    # The columnar store's 8-byte digest replaces the old multi-megabyte
    # JSONL double-run compare as the fixed-seed determinism gate; the
    # byte-level cmp backstops the digest against collisions.
    s1="$(mktemp)"; s2="$(mktemp)"; o1="$(mktemp)"; o2="$(mktemp)"
    trap 'rm -f "$s1" "$s2" "$o1" "$o2"' EXIT
    SCAN_HORIZON=300 SCAN_REPS=1 cargo run -q --release -p scan-bench --bin fig4 -- \
        --quick --store "$s1" > "$o1"
    SCAN_HORIZON=300 SCAN_REPS=1 cargo run -q --release -p scan-bench --bin fig4 -- \
        --quick --store "$s2" > "$o2"
    d1="$(sed -n 's/.*digest \([0-9a-f]*\).*/\1/p' "$o1")"
    d2="$(sed -n 's/.*digest \([0-9a-f]*\).*/\1/p' "$o2")"
    [[ -n "$d1" && "$d1" == "$d2" ]] || {
        echo "FAIL: fixed-seed store digest differs between runs ($d1 vs $d2)" >&2; exit 1; }
    cmp "$s1" "$s2" || { echo "FAIL: fixed-seed store export differs between runs" >&2; exit 1; }

    echo "==> store/JSONL cross-check (the one retained JSONL gate)"
    cargo test -q --test tracestore_fleet store_agrees_with_the_jsonl_sink

    echo "==> fleet determinism (1 vs 8 rayon threads: stdout + merged store + spans)"
    f1="$(mktemp)"; f2="$(mktemp)"; fs1="$(mktemp)"; fs2="$(mktemp)"
    fp1="$(mktemp)"; fp2="$(mktemp)"
    trap 'rm -f "$s1" "$s2" "$o1" "$o2" "$f1" "$f2" "$fs1" "$fs2" \
        "$fp1" "$fp2" "$fp1.txt" "$fp2.txt"' EXIT
    RAYON_NUM_THREADS=1 cargo run -q --release -p scan-bench --bin fleet -- \
        --quick --store "$fs1" --spans "$fp1" > "$f1"
    RAYON_NUM_THREADS=8 cargo run -q --release -p scan-bench --bin fleet -- \
        --quick --store "$fs2" --spans "$fp2" > "$f2"
    # The `store:`/`spans:` "wrote <path>" lines carry the differing temp
    # paths; the spans report itself is byte-compared below instead.
    diff <(grep -v '^store:\|^spans:' "$f1") <(grep -v '^store:\|^spans:' "$f2") \
        || { echo "FAIL: fleet result depends on rayon thread count" >&2; exit 1; }
    cmp "$fs1" "$fs2" \
        || { echo "FAIL: merged fleet store depends on rayon thread count" >&2; exit 1; }
    cmp "$fp1.txt" "$fp2.txt" \
        || { echo "FAIL: merged fleet span report depends on rayon thread count" >&2; exit 1; }
    cmp "$fp1" "$fp2" \
        || { echo "FAIL: fleet Perfetto timeline depends on rayon thread count" >&2; exit 1; }

    # Analyzer latency budget: the semantic layer must keep the full
    # release-mode scan under 250 ms so scan-lint stays first in CI.
    echo "==> scan-lint --time-budget-ms 250 (release)"
    cargo run -q --release -p scan-lint -- --time-budget-ms 250

    # Perf trajectory (blocking): compare the two newest bench ledgers.
    # The tolerance is wide enough (±5%) to ride out shared-box noise on
    # these long-running benches; a real regression trips the gate.
    ledgers=($(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -2))
    if [[ "${#ledgers[@]}" == 2 ]]; then
        echo "==> bench ledger compare (blocking, ±5%): ${ledgers[0]} -> ${ledgers[1]}"
        ./scripts/bench.sh --compare "${ledgers[0]}" "${ledgers[1]}" --tolerance 0.05
    fi
fi

echo "==> metrics overhead bench (run-gate: disabled hot path must execute)"
cargo bench -p scan-bench --bench metrics >/dev/null

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "CI gate passed."
