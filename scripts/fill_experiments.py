#!/usr/bin/env python3
"""Paste the fig4/fig5 result tables into EXPERIMENTS.md.

Usage: python3 scripts/fill_experiments.py <fig4_output> <fig5_output>

Replaces the `<!-- FIG4_CALIBRATED_TABLE -->` and `<!-- FIG5_TABLE -->`
markers with fenced code blocks containing the harness output, so the
recorded numbers always come from an actual run.
"""

import sys
from pathlib import Path


def extract(path: str, start_marker: str) -> str:
    lines = Path(path).read_text().splitlines()
    try:
        start = next(i for i, l in enumerate(lines) if start_marker in l)
    except StopIteration:
        raise SystemExit(f"marker {start_marker!r} not found in {path}")
    out = []
    for line in lines[start:]:
        if line.startswith("(") or line.startswith("Shape criteria"):
            break
        out.append(line.rstrip())
    while out and not out[-1].strip():
        out.pop()
    return "\n".join(out)


def main() -> None:
    fig4_path, fig5_path = sys.argv[1], sys.argv[2]
    fig4 = extract(fig4_path, "calibrated load axis")
    fig5 = extract(fig5_path, "core-stages |")
    best = next(
        (l for l in Path(fig5_path).read_text().splitlines() if l.startswith("Best configuration")),
        "",
    )
    exp = Path("EXPERIMENTS.md")
    text = exp.read_text()
    text = text.replace("<!-- FIG4_CALIBRATED_TABLE -->", f"```text\n{fig4}\n```")
    text = text.replace("<!-- FIG5_TABLE -->", f"```text\n{fig5}\n{best}\n```")
    exp.write_text(text)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
